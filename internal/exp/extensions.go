package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// extensionExperiments are the ablation and robustness studies that go
// beyond the paper's artifacts: they quantify the design decisions
// DESIGN.md calls out and check headline results across seeds.
func extensionExperiments() []Experiment {
	return []Experiment{
		{ID: "DepthSweep", Description: "Ablation: lookahead depth k from EASY (k=1) toward conservative-like protection", Run: runDepthSweep},
		{ID: "SlackSweep", Description: "Ablation: slack factor from conservative (s=0) toward aggressive insertion", Run: runSlackSweep},
		{ID: "CompressionAblation", Description: "Ablation: conservative backfilling with and without hole compression", Run: runCompressionAblation},
		{ID: "Fairness", Description: "Extension: fairness view (Gini, tail ratios) across schedulers", Run: runFairness},
		{ID: "Confidence", Description: "Robustness: headline slowdowns across seeds with 95% CIs", Run: runConfidence},
		{ID: "Burstiness", Description: "Extension: renewal vs diurnal vs user-session arrivals at equal load", Run: runBurstiness},
		{ID: "BackfillOrder", Description: "Ablation: EASY backfill candidate order (firstfit / bestfit / shortestfit)", Run: runBackfillOrder},
		{ID: "Significance", Description: "Robustness: paired-bootstrap CIs for per-job slowdown differences between schedulers", Run: runSignificance},
		{ID: "Preemption", Description: "Companion-paper extension: EASY with selective preemption (suspend/resume)", Run: runPreemption},
		{ID: "PolicyMatrix", Description: "Survey: every scheduler family × priority policy on one workload", Run: runPolicyMatrix},
		{ID: "Partitioning", Description: "Historical baseline: static short/long partitions vs one shared backfilling pool", Run: runPartitioning},
		{ID: "LoadConsistency", Description: "§3's claim: the category-wise trends hold under both normal and high load", Run: runLoadConsistency},
		{ID: "MultiSite", Description: "Companion-paper extension: grid scheduling with multiple simultaneous requests", Run: runMultiSite},
		{ID: "Distribution", Description: "Extension: the full slowdown distribution (quantiles), not just the mean", Run: runDistribution},
	}
}

// --- Slowdown distribution ---------------------------------------------------

func runDistribution(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Distribution",
		Title:   "Slowdown quantiles — CTC trace, actual estimates (the paper's theme: means hide the story)",
		Headers: []string{"scheduler", "p10", "p25", "p50", "p75", "p90", "p99", "mean"},
		Notes: []string{
			"most jobs see slowdown ~1 under every scheduler; the schedulers differ almost entirely in the tail",
		},
	}
	cfgs := [][2]string{
		{"conservative", "FCFS"},
		{"easy", "FCFS"},
		{"easy", "SJF"},
		{"selective:adaptive", "FCFS"},
		{"preemptive:5", "FCFS"},
	}
	for _, c := range cfgs {
		r, err := l.Result("CTC", HighLoad, "actual", c[0], c[1])
		if err != nil {
			return nil, err
		}
		slows := make([]float64, len(r.Outcomes))
		for i, o := range r.Outcomes {
			slows[i] = o.Slowdown
		}
		qs := stats.Percentiles(slows, 10, 25, 50, 75, 90, 99)
		t.AddRow(r.Report.Scheduler, qs[0], qs[1], qs[2], qs[3], qs[4], qs[5],
			r.Report.Overall.MeanSlowdown)
	}
	return []*Table{t}, nil
}

// --- Multi-site grid scheduling -------------------------------------------------

func runMultiSite(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "MultiSite",
		Title:   "Grid of 4×128-processor sites: submission strategies — SDSC-class workload, actual estimates",
		Headers: []string{"routing", "scheduler", "avg slowdown", "avg wait (s)", "max turnaround (s)"},
		Notes: []string{
			"replicate-all submits every job to all sites and cancels the losers when one starts it (HPDC'02 companion paper)",
			"it beats even the least-loaded router: submission-time load information cannot see the holes that open later, but a copy in every queue can take them",
		},
	}
	const procs = 128
	model, err := workload.NewSDSC(0.75)
	if err != nil {
		return nil, err
	}
	n := l.P.Jobs
	if n > 4000 {
		n = 4000
	}
	jobs, err := model.Generate(n, l.P.Seed)
	if err != nil {
		return nil, err
	}
	// Four sites share the stream: compress arrivals so the aggregate
	// offered load lands near the single-site calibration.
	jobs, err = trace.ScaleLoad(jobs, 0.25)
	if err != nil {
		return nil, err
	}
	jobs = workload.ApplyEstimates(jobs, workload.Actual{}, l.P.Seed+1)

	th := job.PaperThresholds()
	for _, schedKind := range []string{"easy", "conservative"} {
		pol, err := sched.PolicyByName("FCFS")
		if err != nil {
			return nil, err
		}
		mk, err := sched.MakerFor(schedKind, pol)
		if err != nil {
			return nil, err
		}
		sites := make([]grid.Site, 4)
		for i := range sites {
			sites[i] = grid.Site{Name: fmt.Sprintf("site%d", i), Procs: procs, Make: mk}
		}
		for _, routing := range []grid.Routing{grid.Single, grid.LeastLoaded, grid.ReplicateAll} {
			ps, err := grid.Run(sites, jobs, routing)
			if err != nil {
				return nil, fmt.Errorf("exp: multisite %s/%v: %w", schedKind, routing, err)
			}
			rep := metrics.Analyze(schedKind, grid.ToSimPlacements(ps), th, 4*procs)
			t.AddRow(routing.String(), schedKind, rep.Overall.MeanSlowdown,
				rep.Overall.MeanWait, rep.Overall.MaxTurnaround)
		}
	}
	return []*Table{t}, nil
}

// --- Normal vs high load trend consistency ------------------------------------------

func runLoadConsistency(l *Lab) ([]*Table, error) {
	// The paper: "Simulation studies were performed under both normal and
	// high loads. Similar trends were observed under both loads. The trends
	// are pronounced under high load." Reproduce the Figure 2 FCFS
	// category changes at both loads.
	t := &Table{
		ID:      "LoadConsistency",
		Title:   "Category-wise %Δ slowdown, EASY vs conservative under FCFS, at both loads — CTC trace",
		Headers: []string{"category", "normal load", "high load"},
		Notes: []string{
			"the paper reports the same signs at both loads, pronounced under high load",
		},
	}
	change := func(load Load, c job.Category) (float64, error) {
		cons, err := l.Result("CTC", load, "exact", "conservative", "FCFS")
		if err != nil {
			return 0, err
		}
		easy, err := l.Result("CTC", load, "exact", "easy", "FCFS")
		if err != nil {
			return 0, err
		}
		b := cons.Report.ByCategory[c].MeanSlowdown
		v := easy.Report.ByCategory[c].MeanSlowdown
		if b == 0 {
			return 0, nil
		}
		return 100 * (v - b) / b, nil
	}
	for _, c := range job.Categories() {
		normal, err := change(NormalLoad, c)
		if err != nil {
			return nil, err
		}
		high, err := change(HighLoad, c)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.String(), fmt.Sprintf("%+.1f%%", normal), fmt.Sprintf("%+.1f%%", high))
	}
	return []*Table{t}, nil
}

// --- Static partitioning vs shared pool ------------------------------------------

func runPartitioning(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Partitioning",
		Title:   "Static short/long partition vs shared backfilling pool — CTC trace, actual estimates",
		Headers: []string{"configuration", "avg slowdown", "avg wait (s)", "utilization %", "capacity loss %"},
		Notes: []string{
			"the pre-backfilling operating model: a dedicated short-job partition plus a long-job partition",
			"the shared pool wins on delivered utilization — each partition idles while the other queues",
			"capacity loss = fraction of processor-time idle while jobs waited (the scheduler's own waste)",
		},
	}
	jobs, err := l.Workload("CTC", HighLoad, "actual")
	if err != nil {
		return nil, err
	}
	procs, err := l.Procs("CTC")
	if err != nil {
		return nil, err
	}
	// Cap at the long partition's width so every job is routable; the same
	// capped workload feeds the shared pool for a fair comparison.
	longSize := procs * 7 / 10
	shortSize := procs - longSize
	jobs = trace.FilterWidth(jobs, longSize)

	configs := []struct {
		label string
		mk    func() sim.Scheduler
	}{
		{"shared EASY(FCFS)", func() sim.Scheduler { return sched.NewEASY(procs, sched.FCFS{}) }},
		{"shared EASY(SJF)", func() sim.Scheduler { return sched.NewEASY(procs, sched.SJF{}) }},
		{fmt.Sprintf("split %d short + %d long, EASY(FCFS)", shortSize, longSize), func() sim.Scheduler {
			sizes := []int{shortSize, longSize}
			return sched.NewPartitioned(sizes, sched.RuntimeRouter(3600, sizes), func(p, _ int) sim.Scheduler {
				return sched.NewEASY(p, sched.FCFS{})
			})
		}},
		{fmt.Sprintf("split %d short + %d long, NoBackfill(FCFS)", shortSize, longSize), func() sim.Scheduler {
			sizes := []int{shortSize, longSize}
			return sched.NewPartitioned(sizes, sched.RuntimeRouter(3600, sizes), func(p, _ int) sim.Scheduler {
				return sched.NewNoBackfill(p, sched.FCFS{})
			})
		}},
	}
	th := job.PaperThresholds()
	for _, cfg := range configs {
		s := cfg.mk()
		aud := sched.NewAuditor(procs)
		ps, err := sim.Run(sim.Machine{Procs: procs}, jobs, s, aud.Observer())
		if err != nil {
			return nil, fmt.Errorf("exp: partitioning %s: %w", cfg.label, err)
		}
		if err := aud.Err(); err != nil {
			return nil, fmt.Errorf("exp: partitioning %s: %w", cfg.label, err)
		}
		rep := metrics.Analyze(s.Name(), ps, th, procs)
		t.AddRow(cfg.label, rep.Overall.MeanSlowdown, rep.Overall.MeanWait,
			100*rep.Utilization, 100*rep.LossOfCapacity)
	}
	return []*Table{t}, nil
}

// --- Full survey matrix ---------------------------------------------------------

func runPolicyMatrix(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "PolicyMatrix",
		Title:   "Every scheduler family × priority policy — CTC trace, actual estimates (avg slowdown)",
		Headers: []string{"scheduler", "FCFS", "SJF", "XF", "LJF", "WFP"},
		Notes: []string{
			"one table to rank them all; the paper's warning applies — check the per-category views before believing it",
		},
	}
	kinds := []string{
		"none", "conservative", "easy", "easy:bestfit", "easy:shortestfit",
		"depth:4", "slack:1", "selective:adaptive", "preemptive:10",
	}
	for _, kind := range kinds {
		row := []any{kind}
		for _, pol := range []string{"FCFS", "SJF", "XF", "LJF", "WFP"} {
			r, err := l.Result("CTC", HighLoad, "actual", kind, pol)
			if err != nil {
				return nil, err
			}
			row = append(row, r.Report.Overall.MeanSlowdown)
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// --- Selective preemption ------------------------------------------------------

func runPreemption(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Preemption",
		Title:   "Selective preemption (suspend/resume) vs non-preemptive schedulers — CTC trace, actual estimates, FCFS",
		Headers: []string{"scheduler", "avg slowdown", "worst-case turnaround (s)", "p95 slowdown"},
		Notes: []string{
			"selective preemption attacks the same starvation problem as selective reservation, with the opposite tool:",
			"instead of promising the starving job the future, it takes the present from low-priority running work",
		},
	}
	kinds := []string{"easy", "conservative", "selective:adaptive", "preemptive:20", "preemptive:10", "preemptive:5"}
	for _, kind := range kinds {
		r, err := l.Result("CTC", HighLoad, "actual", kind, "FCFS")
		if err != nil {
			return nil, err
		}
		t.AddRow(r.Report.Scheduler, r.Report.Overall.MeanSlowdown,
			r.Report.Overall.MaxTurnaround, r.Report.Overall.P95Slowdown)
	}
	return []*Table{t}, nil
}

// --- Paired-bootstrap significance ----------------------------------------------

func runSignificance(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Significance",
		Title:   "Paired per-job slowdown differences (candidate − baseline), 95% bootstrap CIs — CTC, high load",
		Headers: []string{"baseline", "candidate", "estimates", "mean diff [95% CI]", "significant"},
		Notes: []string{
			"pairing by job removes workload noise: the same jobs run under both schedulers",
			"an interval excluding zero means the ordering is not a fluke of a few jobs",
		},
	}
	comparisons := []struct {
		baseKind, basePol, candKind, candPol, est string
	}{
		{"conservative", "FCFS", "easy", "SJF", "exact"},
		{"conservative", "FCFS", "easy", "XF", "exact"},
		{"conservative", "FCFS", "easy", "FCFS", "exact"},
		{"conservative", "SJF", "easy", "SJF", "actual"},
		{"easy", "FCFS", "selective:adaptive", "FCFS", "actual"},
	}
	for _, c := range comparisons {
		base, err := l.Result("CTC", HighLoad, c.est, c.baseKind, c.basePol)
		if err != nil {
			return nil, err
		}
		cand, err := l.Result("CTC", HighLoad, c.est, c.candKind, c.candPol)
		if err != nil {
			return nil, err
		}
		diffs, err := pairedSlowdowns(cand, base)
		if err != nil {
			return nil, err
		}
		ci, err := stats.BootstrapMeanCI(diffs, 2000, 0.95, l.P.Seed+99)
		if err != nil {
			return nil, err
		}
		t.AddRow(base.Report.Scheduler, cand.Report.Scheduler, c.est,
			ci.String(), fmt.Sprintf("%v", ci.ExcludesZero()))
	}
	return []*Table{t}, nil
}

// pairedSlowdowns aligns two results by job ID and returns per-job
// candidate−baseline slowdown differences.
func pairedSlowdowns(cand, base *core.Result) ([]float64, error) {
	baseByID := make(map[int]float64, len(base.Outcomes))
	for _, o := range base.Outcomes {
		baseByID[o.Job.ID] = o.Slowdown
	}
	diffs := make([]float64, 0, len(cand.Outcomes))
	for _, o := range cand.Outcomes {
		b, ok := baseByID[o.Job.ID]
		if !ok {
			return nil, fmt.Errorf("exp: job %d missing from baseline", o.Job.ID)
		}
		diffs = append(diffs, o.Slowdown-b)
	}
	return diffs, nil
}

// --- Backfill candidate order ------------------------------------------------

func runBackfillOrder(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "BackfillOrder",
		Title:   "EASY backfill candidate order — CTC trace, actual estimates",
		Headers: []string{"variant", "avg slowdown", "avg turnaround (s)", "utilization %"},
		Notes: []string{
			"the order only breaks competition among simultaneously eligible candidates — yet shortestfit wins clearly on mean slowdown (short winners have small slowdown denominators), while bestfit trades slowdown for packing",
		},
	}
	for _, kind := range []string{"easy", "easy:bestfit", "easy:shortestfit"} {
		r, err := l.Result("CTC", HighLoad, "actual", kind, "FCFS")
		if err != nil {
			return nil, err
		}
		t.AddRow(r.Report.Scheduler, r.Report.Overall.MeanSlowdown,
			r.Report.Overall.MeanTurnaround, 100*r.Report.Utilization)
	}
	return []*Table{t}, nil
}

// --- Burstiness: arrival-process structure at equal load ------------------------

func runBurstiness(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Burstiness",
		Title:   "Arrival-process structure at roughly equal offered load — CTC distributions",
		Headers: []string{"arrival process", "offered load", "scheduler", "avg slowdown", "p95 slowdown", "peak queue"},
		Notes: []string{
			"renewal arrivals understate queueing: diurnal cycles and user sessions concentrate submissions",
			"backfilling's advantage grows with burstiness — bursts of similar jobs pack well into holes",
		},
	}
	n := l.P.Jobs
	if n > 4000 {
		n = 4000
	}

	type variant struct {
		name string
		gen  func() ([]*job.Job, int, error)
	}
	variants := []variant{
		{"renewal", func() ([]*job.Job, int, error) {
			m, err := workload.NewCTC(0.75)
			if err != nil {
				return nil, 0, err
			}
			js, err := m.Generate(n, l.P.Seed)
			return js, m.Procs, err
		}},
		{"diurnal", func() ([]*job.Job, int, error) {
			m, err := workload.NewCTC(0.75)
			if err != nil {
				return nil, 0, err
			}
			m.Daily = workload.StandardDaily()
			js, err := m.Generate(n, l.P.Seed)
			return js, m.Procs, err
		}},
		{"sessions", func() ([]*job.Job, int, error) {
			s, err := workload.NewSessionCTC(0.75)
			if err != nil {
				return nil, 0, err
			}
			js, err := s.Generate(n, l.P.Seed)
			return js, s.Base.Procs, err
		}},
	}

	for _, v := range variants {
		jobs, procs, err := v.gen()
		if err != nil {
			return nil, err
		}
		load := trace.OfferedLoad(jobs, procs)
		for _, cfg := range [][2]string{{"conservative", "FCFS"}, {"easy", "SJF"}} {
			res, err := core.Run(core.Config{Procs: procs, Scheduler: cfg[0], Policy: cfg[1], Audit: true}, jobs)
			if err != nil {
				return nil, err
			}
			t.AddRow(v.name, fmt.Sprintf("%.2f", load), res.Report.Scheduler,
				res.Report.Overall.MeanSlowdown, res.Report.Overall.P95Slowdown,
				metrics.PeakQueueDepth(res.Placements))
		}
	}
	return []*Table{t}, nil
}

// --- Depth sweep -------------------------------------------------------------

func runDepthSweep(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "DepthSweep",
		Title:   "Lookahead-k backfilling — CTC trace, actual estimates, FCFS",
		Headers: []string{"k", "avg slowdown", "SW slowdown", "LN slowdown", "worst-case turnaround (s)"},
		Notes: []string{
			"k=1 is EASY; growing k adds reservation roofs: wide jobs gain protection, long narrow jobs lose backfill room",
		},
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		r, err := l.Result("CTC", HighLoad, "actual", fmt.Sprintf("depth:%d", k), "FCFS")
		if err != nil {
			return nil, err
		}
		t.AddRow(k, r.Report.Overall.MeanSlowdown,
			r.Report.ByCategory[job.ShortWide].MeanSlowdown,
			r.Report.ByCategory[job.LongNarrow].MeanSlowdown,
			r.Report.Overall.MaxTurnaround)
	}
	return []*Table{t}, nil
}

// --- Slack sweep -------------------------------------------------------------

func runSlackSweep(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "SlackSweep",
		Title:   "Slack-based backfilling — CTC trace, actual estimates, FCFS",
		Headers: []string{"slack factor", "avg slowdown", "avg turnaround (s)", "worst-case turnaround (s)"},
		Notes: []string{
			"slack 0 reproduces conservative exactly; growing slack lets short arrivals displace reservations",
		},
	}
	for _, s := range []string{"slack:0", "slack:0.5", "slack:1", "slack:2", "slack:5"} {
		r, err := l.Result("CTC", HighLoad, "actual", s, "FCFS")
		if err != nil {
			return nil, err
		}
		t.AddRow(s, r.Report.Overall.MeanSlowdown,
			r.Report.Overall.MeanTurnaround, r.Report.Overall.MaxTurnaround)
	}
	return []*Table{t}, nil
}

// --- Compression ablation -------------------------------------------------------

func runCompressionAblation(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "CompressionAblation",
		Title:   "Conservative backfilling with vs without compression — CTC trace, FCFS",
		Headers: []string{"estimates", "slowdown (with)", "slowdown (without)", "turnaround (with)", "turnaround (without)"},
		Notes: []string{
			"with accurate estimates (R=1) the two coincide: no holes ever open",
			"without compression, stale reservations inflate mean turnaround by an order of magnitude at R=4",
			"mean slowdown can look *better* without compression — short arrivals backfill into the sparse phantom ladder — which is exactly the metric blindness the paper's per-category methodology warns about",
		},
	}
	for _, est := range []string{"R=1", "R=2", "R=4", "actual"} {
		with, err := l.Result("CTC", HighLoad, est, "conservative", "FCFS")
		if err != nil {
			return nil, err
		}
		without, err := l.Result("CTC", HighLoad, est, "conservative-nc", "FCFS")
		if err != nil {
			return nil, err
		}
		t.AddRow(est, with.Report.Overall.MeanSlowdown, without.Report.Overall.MeanSlowdown,
			with.Report.Overall.MeanTurnaround, without.Report.Overall.MeanTurnaround)
	}
	return []*Table{t}, nil
}

// --- Fairness ---------------------------------------------------------------------

func runFairness(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Fairness",
		Title:   "Fairness of delay distribution — CTC trace, actual estimates",
		Headers: []string{"scheduler", "avg slowdown", "Gini(slowdown)", "P99/P50 slowdown", "max/mean"},
		Notes: []string{
			"EASY's low averages concentrate delay on few victims (higher tail ratios); reservations flatten the distribution",
		},
	}
	cfgs := [][2]string{
		{"none", "FCFS"},
		{"conservative", "FCFS"},
		{"easy", "FCFS"},
		{"easy", "SJF"},
		{"selective:adaptive", "FCFS"},
		{"slack:1", "FCFS"},
	}
	for _, c := range cfgs {
		r, err := l.Result("CTC", HighLoad, "actual", c[0], c[1])
		if err != nil {
			return nil, err
		}
		f := metrics.ComputeFairness(r.Outcomes)
		t.AddRow(r.Report.Scheduler, r.Report.Overall.MeanSlowdown,
			fmt.Sprintf("%.3f", f.GiniSlowdown),
			fmt.Sprintf("%.1f", f.TailRatio99),
			fmt.Sprintf("%.1f", f.MaxMeanRatio))
	}
	return []*Table{t}, nil
}

// --- Confidence intervals across seeds -----------------------------------------------

// confidenceSeeds is how many independent workloads the Confidence
// experiment averages over.
const confidenceSeeds = 5

func runConfidence(l *Lab) ([]*Table, error) {
	t := &Table{
		ID:      "Confidence",
		Title:   fmt.Sprintf("Headline slowdowns across %d seeds (mean ± 95%% CI) — CTC, high load", confidenceSeeds),
		Headers: []string{"scheduler", "estimates", "mean slowdown", "±95% CI"},
		Notes: []string{
			"the Figure 1/3 orderings must hold beyond the default seed to count as reproduced",
		},
	}
	procs, err := l.Procs("CTC")
	if err != nil {
		return nil, err
	}
	cfgs := []struct {
		kind, pol, est string
	}{
		{"conservative", "FCFS", "exact"},
		{"easy", "SJF", "exact"},
		{"easy", "XF", "exact"},
		{"conservative", "SJF", "actual"},
		{"easy", "SJF", "actual"},
	}
	// Smaller per-seed workloads keep the experiment fast; the CI covers
	// the extra noise.
	n := l.P.Jobs / 2
	if n < 200 {
		n = 200
	}
	for _, cfg := range cfgs {
		var acc stats.Accumulator
		for s := 0; s < confidenceSeeds; s++ {
			slow, err := oneSlowdown(l.P, procs, n, l.P.Seed+int64(100*s), cfg.kind, cfg.pol, cfg.est)
			if err != nil {
				return nil, err
			}
			acc.Add(slow)
		}
		t.AddRow(fmt.Sprintf("%s(%s)", cfg.kind, cfg.pol), cfg.est,
			acc.Mean(), fmt.Sprintf("±%.2f", stats.NormalCI(&acc)))
	}
	return []*Table{t}, nil
}

// oneSlowdown generates one seeded CTC high-load workload and returns the
// overall mean slowdown for a configuration.
func oneSlowdown(p Params, procs, n int, seed int64, kind, pol, est string) (float64, error) {
	model, err := workload.NewCTC(p.NormalLoad)
	if err != nil {
		return 0, err
	}
	jobs, err := model.Generate(n, seed)
	if err != nil {
		return 0, err
	}
	jobs, err = trace.ScaleLoad(jobs, p.NormalLoad/p.HighLoad)
	if err != nil {
		return 0, err
	}
	em, err := workload.EstimateModelByName(est)
	if err != nil {
		return 0, err
	}
	jobs = workload.ApplyEstimates(jobs, em, seed+1)
	res, err := core.Run(core.Config{Procs: procs, Scheduler: kind, Policy: pol, Audit: true}, jobs)
	if err != nil {
		return 0, err
	}
	return res.Report.Overall.MeanSlowdown, nil
}
