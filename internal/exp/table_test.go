package exp

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		ID:      "T1",
		Title:   "sample",
		Headers: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	t.AddRow("alpha", 1.5)
	t.AddRow("b", 12345.678)
	t.AddRow("c", 42.0)
	t.AddRow("with,comma", "quo\"te")
	return t
}

func TestTableRender(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"== T1: sample ==", "name", "value", "alpha", "1.50", "12345.7", "42", "note: a note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q in:\n%s", frag, out)
		}
	}
	// Columns aligned: every data line should have the value column at the
	// same offset as the header's.
	lines := strings.Split(out, "\n")
	var headerIdx int
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			headerIdx = i
			break
		}
	}
	valCol := strings.Index(lines[headerIdx], "value")
	if valCol <= 0 {
		t.Fatalf("no value column in %q", lines[headerIdx])
	}
	if !strings.HasPrefix(lines[headerIdx+2][valCol:], "1.50") {
		t.Errorf("misaligned first row: %q", lines[headerIdx+2])
	}
}

func TestTableCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, `"with,comma","quo""te"`) {
		t.Fatalf("csv escaping wrong: %q", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := sampleTable().Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		"### T1: sample",
		"| name | value |",
		"| --- | --- |",
		"| alpha | 1.50 |",
		"> a note",
		`with,comma | quo"te`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q in:\n%s", frag, out)
		}
	}
}

func TestTableMarkdownEscapesPipes(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Headers: []string{"a"}}
	tab.AddRow("left|right")
	var sb strings.Builder
	if err := tab.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `left\|right`) {
		t.Fatalf("pipe not escaped: %q", sb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{-3, "-3"},
		{1.25, "1.25"},
		{999.994, "999.99"},
		{1000.06, "1000.1"},
		{12345.678, "12345.7"},
	}
	for _, tc := range cases {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
