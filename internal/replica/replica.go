// Package replica runs a follower of one schedd leader: it replays the
// leader's write-ahead journal — read straight from a shared journal
// directory, or streamed over the leader's GET /v1/wal endpoint — into its
// own serve.Server and publishes snapshots, so the daemon's entire
// lock-free read surface (/v1/queue, /v1/jobs/{id}, /healthz, /metrics,
// memoized forecasts) serves from the replica exactly as it would from the
// leader. The follower applies the same bytes the leader committed through
// the same deterministic replay path recovery uses, so at equal applied
// sequence the two processes hold byte-identical state (equality of
// sim.Session.StateHash is the enforced invariant).
//
// A follower is always some operations behind — replication is
// asynchronous — and says so: applied/leader sequence, op lag, and
// virtual-time lag are published on GET /v1/debug/replication and as
// schedd_replica_* gauges. Clients that need read-your-writes pass the
// X-Schedd-Seq a leader write returned back as ?min_seq=; the follower
// holds the read until it has applied that far (or answers 504 when it
// cannot within the barrier timeout).
//
// When the leader dies, a follower can take over: Promote (operator-driven
// via POST /v1/promote or schedctl promote, or automatic after
// Options.AutoPromote consecutive failed leader health probes) finishes
// replaying the journal tail, fences the lineage — the journal directory's
// flock refuses a promotion while any leader still owns it, and a term
// record marks the succession for everyone replaying later — and lifts the
// write fence. No write the old leader acknowledged is lost: acknowledged
// means durable in the journal, and promotion replays the journal to its
// end before accepting new writes.
package replica

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/job"
	"repro/internal/serve"
)

// logf reports replication events worth an operator's attention. Tests may
// silence it.
var logf = log.New(os.Stderr, "", log.LstdFlags).Printf

// Options configure a Replica.
type Options struct {
	// Source is the leader to follow: an http(s):// base URL (the leader's
	// API address, or a federation shard's .../v1/shards/N prefix) or a
	// journal directory path on shared storage.
	Source string
	// Serve configures the local mirror; Procs/Scheduler/Policy/Audit and
	// the ID class must match the leader's, exactly as a restart of the
	// leader itself would (the replayed checkpoint cross-checks them).
	Serve serve.Options
	// ID names this follower in the leader's registry; followers the leader
	// can name hold the pruning retention floor at their applied position.
	// Defaults to "follower".
	ID string
	// Advertise is the read URL this follower registers with the leader
	// (HTTP sources only — it rides the /v1/wal pull as &addr=). A leader
	// that knows a follower's read address can hand it to the federation
	// read balancer, which routes eligible reads there automatically. Empty
	// means the follower replicates without advertising a read endpoint.
	Advertise string
	// Wait is the long-poll duration passed on replication pulls (HTTP
	// sources only): a caught-up pull parks on the leader until new records
	// land or Wait expires, instead of returning empty and sleeping a full
	// Poll. This is what keeps follower lag — and therefore quorum-ack
	// latency — at a round-trip rather than a poll interval. 0 disables
	// long-polling (every pull returns immediately).
	Wait time.Duration
	// PromoteDir is the journal directory to own on promotion: the leader's
	// own directory for a shared-storage takeover (defaults to Source when
	// Source is a directory), or a fresh directory seeded from the
	// follower's replicated history. Empty with an HTTP source promotes
	// in-memory only.
	PromoteDir string
	// Fsync applies to the journal opened at promotion.
	Fsync bool
	// Poll is the replication pull interval. Defaults to 25ms.
	Poll time.Duration
	// MaxBatch bounds records applied per pull. Defaults to 1024.
	MaxBatch int
	// HealthURL is the leader liveness probe base URL (its /healthz is
	// probed). Defaults to Source when Source is an HTTP URL.
	HealthURL string
	// AutoPromote, when > 0, promotes automatically after this many
	// consecutive failed leader health probes. 0 means never: promotion is
	// operator-driven only.
	AutoPromote int
}

// node is the replica's current local mirror. Replaced wholesale on a full
// resync (the one case where incremental replay cannot continue), so
// readers always see either the old consistent state or the new one.
type node struct {
	srv *serve.Server
	h   http.Handler
}

// Replica follows one leader.
type Replica struct {
	opts Options
	src  source

	// mu serializes the applier side: Sync, resync, and promotion. The read
	// path never takes it.
	mu   sync.Mutex
	node atomic.Pointer[node]

	applied   atomic.Uint64
	leaderSeq atomic.Uint64
	leaderNow atomic.Int64
	resyncs   atomic.Int64
	promoted  atomic.Bool
}

// New builds a follower of opts.Source and its empty local mirror; the
// first Sync (or Run tick) performs the initial catch-up.
func New(opts Options) (*Replica, error) {
	if opts.Source == "" {
		return nil, fmt.Errorf("replica: no source")
	}
	if opts.ID == "" {
		opts.ID = "follower"
	}
	if opts.Poll <= 0 {
		opts.Poll = 25 * time.Millisecond
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 1024
	}
	if opts.Serve.Follower == "" {
		opts.Serve.Follower = opts.Source
	}
	httpSrc := strings.HasPrefix(opts.Source, "http://") || strings.HasPrefix(opts.Source, "https://")
	if httpSrc {
		if opts.HealthURL == "" {
			opts.HealthURL = opts.Source
		}
	} else if opts.PromoteDir == "" {
		opts.PromoteDir = opts.Source
	}
	r := &Replica{opts: opts}
	if httpSrc {
		r.src = newHTTPSource(opts.Source, opts.ID, opts.Advertise, opts.Wait)
	} else {
		r.src = &dirSource{dir: opts.Source}
	}
	srv, err := serve.New(opts.Serve)
	if err != nil {
		return nil, err
	}
	r.node.Store(&node{srv: srv, h: srv.Handler()})
	return r, nil
}

// Server returns the current local mirror — for tests and drills that
// compare state hashes or snapshots directly.
func (r *Replica) Server() *serve.Server { return r.node.Load().srv }

// Preload delegates to the local mirror; before promotion it hits the
// follower write fence (a follower's workload comes from its leader).
// Present so the replica satisfies cmd/schedd's service interface.
func (r *Replica) Preload(jobs []*job.Job) error { return r.node.Load().srv.Preload(jobs) }

// Close releases the mirror's journal resources (held only once promoted).
func (r *Replica) Close() error { return r.node.Load().srv.Close() }

// AppliedSeq returns the last journal sequence applied locally.
func (r *Replica) AppliedSeq() uint64 { return r.applied.Load() }

// Promoted reports whether this replica has taken over as leader.
func (r *Replica) Promoted() bool { return r.promoted.Load() }

// Sync performs one replication pull and applies it: at most one record
// batch (one snapshot publication) or one full resync. It returns with the
// follower caught up to whatever the pull saw — the deterministic step
// tests and the Run loop share. A no-op after promotion.
func (r *Replica) Sync() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted.Load() {
		return nil
	}
	return r.syncLocked()
}

func (r *Replica) syncLocked() error {
	res, err := r.src.pull(r.applied.Load(), r.opts.MaxBatch)
	if err != nil {
		return err
	}
	if res.hasMeta {
		r.leaderSeq.Store(res.leaderSeq)
		r.leaderNow.Store(res.leaderNow)
	}
	if res.state != nil {
		return r.resync(res.state)
	}
	if len(res.recs) == 0 {
		if !res.hasMeta {
			// Directory mode has no leader headers; an empty pull means we
			// stand at the journal's durable end.
			r.leaderSeq.Store(r.applied.Load())
		}
		return nil
	}
	if err := r.node.Load().srv.ApplyRecords(res.recs); err != nil {
		return err
	}
	last := res.recs[len(res.recs)-1].Seq
	r.applied.Store(last)
	if !res.hasMeta && last > r.leaderSeq.Load() {
		r.leaderSeq.Store(last)
	}
	return nil
}

// resync rebuilds the local mirror from a full checkpoint+tail image — the
// loud path, taken when the leader pruned past our position (or on first
// contact with a journal whose history is already compacted).
func (r *Replica) resync(st *resyncState) error {
	srv, err := serve.New(r.opts.Serve)
	if err != nil {
		return err
	}
	if err := srv.Bootstrap(st.state); err != nil {
		return fmt.Errorf("replica: full resync: %w", err)
	}
	r.node.Store(&node{srv: srv, h: srv.Handler()})
	r.applied.Store(st.appliedSeq)
	n := r.resyncs.Add(1)
	logf("replica: %s: full-checkpoint resync from %s to seq %d (resync #%d)", r.opts.ID, r.opts.Source, st.appliedSeq, n)
	return nil
}

// Promote turns this follower into the leader: final catch-up from the
// source, then serve.Promote fences the journal (flock + term record) and
// lifts the write fence. Idempotent once promoted. The caller must ensure
// Run is (or gets) started so the promoted scheduler loop runs; Run itself
// notices the promotion on its next tick.
func (r *Replica) Promote() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoteLocked()
}

func (r *Replica) promoteLocked() error {
	if r.promoted.Load() {
		return nil
	}
	// Final catch-up: a dead leader's journal still holds every write it
	// acknowledged, and promotion must replay all of them. A pull error
	// here is expected (an HTTP leader that just died refuses connections);
	// we proceed with what the journal itself yields at promotion.
	for {
		before := r.applied.Load()
		if err := r.syncLocked(); err != nil {
			logf("replica: %s: final catch-up stopped: %v", r.opts.ID, err)
			break
		}
		if r.applied.Load() == before {
			break
		}
	}
	term, err := r.node.Load().srv.Promote(r.opts.PromoteDir, r.opts.Fsync, r.applied.Load())
	if err != nil {
		return err
	}
	r.promoted.Store(true)
	logf("replica: %s: promoted to leader (term %d, applied seq %d)", r.opts.ID, term, r.applied.Load())
	return nil
}

// probeInterval paces leader liveness probes (only with AutoPromote).
const probeInterval = 100 * time.Millisecond

// Run drives the follower: pull-and-apply every Poll, probe the leader
// when auto-promotion is armed, and — once promoted, by whichever path —
// hand the goroutine over to the promoted server's scheduler loop until
// ctx is cancelled.
func (r *Replica) Run(ctx context.Context) error {
	tick := time.NewTicker(r.opts.Poll)
	defer tick.Stop()
	fails := 0
	var lastProbe time.Time
	for {
		if r.promoted.Load() {
			return r.node.Load().srv.Run(ctx)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		// Drain bursts: keep pulling while records flow instead of applying
		// one batch per tick. Each follow-up pull also re-registers the new
		// applied position with the leader — the ack a quorum write is
		// waiting on — so confirmations trail an applied batch by one
		// round-trip, not one poll interval. Bounded so a promotion or
		// cancellation is never starved by a firehose leader.
		for i := 0; i < 64; i++ {
			before := r.applied.Load()
			if err := r.Sync(); err != nil {
				logf("replica: %s: sync: %v", r.opts.ID, err)
				break
			}
			if r.applied.Load() == before || r.promoted.Load() || ctx.Err() != nil {
				break
			}
		}
		if r.opts.AutoPromote > 0 && r.opts.HealthURL != "" && time.Since(lastProbe) >= probeInterval {
			lastProbe = time.Now()
			if r.probeLeader() {
				fails = 0
				continue
			}
			fails++
			if fails < r.opts.AutoPromote {
				continue
			}
			logf("replica: %s: leader %s failed %d consecutive health probes, promoting", r.opts.ID, r.opts.HealthURL, fails)
			if err := r.Promote(); err != nil {
				// A still-live leader holding the journal flock lands here —
				// the fence working as designed. Keep following.
				logf("replica: %s: promotion refused: %v", r.opts.ID, err)
				fails = 0
			}
		}
	}
}

var probeClient = &http.Client{Timeout: 250 * time.Millisecond}

// probeLeader reports whether the leader answers its liveness endpoint.
func (r *Replica) probeLeader() bool {
	resp, err := probeClient.Get(strings.TrimSuffix(r.opts.HealthURL, "/") + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Replication renders the follower's view for GET /v1/debug/replication:
// where it stands relative to the leader. After promotion it reports the
// promoted server's leader view, flagged Promoted.
func (r *Replica) Replication() serve.ReplicationInfo {
	n := r.node.Load()
	if r.promoted.Load() {
		info := n.srv.Replication()
		info.Promoted = true
		return info
	}
	applied, leader := r.applied.Load(), r.leaderSeq.Load()
	info := serve.ReplicationInfo{
		Role:       "follower",
		Term:       n.srv.Term(),
		Source:     r.opts.Source,
		AppliedSeq: applied,
		LeaderSeq:  leader,
		Resyncs:    r.resyncs.Load(),
	}
	if leader > applied {
		info.LagOps = leader - applied
	}
	if snap := n.srv.Current(); snap != nil {
		if lag := r.leaderNow.Load() - snap.SimNow; lag > 0 {
			info.LagVirtual = lag
		}
	}
	return info
}
