package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

// BenchmarkReplicaApply measures the follower's apply loop — the rate at
// which a replica consumes journal records into its mirror (session step
// + history coalesce + one snapshot publish per batch). One op replays a
// fixed 2048-record stream — 32 batches in the leader's natural shape, a
// burst of submits closed by the clock advance that retires them — into a
// fresh mirror, so every iteration does identical work regardless of
// benchtime.
func BenchmarkReplicaApply(b *testing.B) {
	opts := serve.Options{
		Procs: 256, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: 1e-9,
		Follower: "bench",
	}
	const batch = 64 // 63 submits + the advance that retires them
	var (
		seq uint64
		now int64
		id  int
	)
	batches := make([][]wal.Record, 32)
	for i := range batches {
		recs := make([]wal.Record, 0, batch)
		for j := 0; j < batch-1; j++ {
			seq++
			id++
			recs = append(recs, wal.Record{
				Seq: seq, Op: wal.OpSubmit,
				Job: &wal.JobRec{
					ID: id, Arrival: now, Runtime: 100, Estimate: 120,
					Width: 1 + j%8,
				},
			})
		}
		seq++
		now += 500
		recs = append(recs, wal.Record{Seq: seq, Op: wal.OpAdvance, To: now})
		batches[i] = recs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := serve.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, recs := range batches {
			if err := srv.ApplyRecords(recs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		srv.Close()
		b.StartTimer()
	}
}

// BenchmarkReplicaRead measures the replica's read surface under parallel
// clients — a job-status poll against a caught-up follower of a busy
// leader. The number to compare against is BenchmarkServeReadStatus in
// internal/serve: the follower serves the same lock-free snapshot path,
// so the replica wrapper (promotion check, min_seq parse, delegate) is
// the only overhead.
func BenchmarkReplicaRead(b *testing.B) {
	dir := b.TempDir()
	leader, err := serve.New(serve.Options{
		Procs: 64, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: 1e-9,
		Durability: serve.DurabilityOptions{Dir: dir},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- leader.Run(ctx) }()
	b.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			b.Fatal("leader did not stop")
		}
		leader.Close()
	})
	lh := leader.Handler()
	submit := func(width int, runtime int64) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/jobs",
			strings.NewReader(fmt.Sprintf(`{"width":%d,"runtime":%d}`, width, runtime)))
		lh.ServeHTTP(rec, req)
		if rec.Code != http.StatusCreated {
			b.Fatalf("seed submit: %d %s", rec.Code, rec.Body.String())
		}
	}
	submit(64, 100000)
	for i := 0; i < 256; i++ {
		submit(1+(i%16)*4, int64(1000+100*i))
	}

	rep, err := New(Options{
		Source: dir,
		Serve: serve.Options{
			Procs: 64, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: 1e-9,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	for {
		before := rep.AppliedSeq()
		if err := rep.Sync(); err != nil {
			b.Fatal(err)
		}
		if rep.AppliedSeq() == before && rep.AppliedSeq() >= 257 {
			break
		}
	}
	h := rep.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/17", nil))
			if rec.Code != http.StatusOK {
				b.Fatalf("GET /v1/jobs/17: %d", rec.Code)
			}
		}
	})
}
