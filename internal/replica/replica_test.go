package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

func init() {
	// Replication events (resyncs, promotions) are intentionally loud;
	// keep test output readable.
	logf = func(string, ...any) {}
}

// leaderOpts is the shared configuration: every follower must mirror the
// leader's scheduling configuration exactly, like a restart of the leader
// itself would.
func leaderOpts(dir string) serve.Options {
	return serve.Options{
		Procs: 8, Scheduler: "easy", Policy: "FCFS", Audit: true, Speed: 1e-9,
		Durability: serve.DurabilityOptions{Dir: dir},
	}
}

func followerOpts() serve.Options {
	o := leaderOpts("")
	o.Durability = serve.DurabilityOptions{}
	return o
}

// startLeader builds and runs a frozen-clock durable leader.
func startLeader(t *testing.T, opts serve.Options) (*serve.Server, func() error) {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	return s, func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("leader did not stop")
			return nil
		}
	}
}

func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// submitOne posts one job to the leader and returns its view.
func submitOne(t *testing.T, h http.Handler, width int, runtime int64) serve.JobView {
	t.Helper()
	rec := do(t, h, "POST", "/v1/jobs", serve.SubmitRequest{Width: width, Runtime: runtime})
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	var v serve.JobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// compareGET asserts leader and follower answer a read byte-identically.
func compareGET(t *testing.T, leader, follower http.Handler, path string) {
	t.Helper()
	lr := do(t, leader, "GET", path, nil)
	fr := do(t, follower, "GET", path, nil)
	if lr.Code != fr.Code {
		t.Fatalf("GET %s: leader %d, follower %d", path, lr.Code, fr.Code)
	}
	if !bytes.Equal(lr.Body.Bytes(), fr.Body.Bytes()) {
		t.Fatalf("GET %s diverged:\nleader:   %s\nfollower: %s", path, lr.Body.String(), fr.Body.String())
	}
}

// leaderStateHash reads the live leader's session digest over its debug
// endpoint (the only safe way while its loop runs).
func leaderStateHash(t *testing.T, h http.Handler) uint64 {
	t.Helper()
	rec := do(t, h, "GET", "/v1/debug/durability", nil)
	var info struct {
		StateHash string `json:"state_hash"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	hash, err := strconv.ParseUint(info.StateHash, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return hash
}

// drainSync pulls until the source yields nothing new.
func drainSync(t *testing.T, r *Replica) {
	t.Helper()
	for {
		before := r.AppliedSeq()
		if err := r.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if r.AppliedSeq() == before {
			return
		}
	}
}

// TestDirFollowerByteIdentity drives a leader and a shared-directory
// follower in lockstep — one acknowledged write, one replication pull —
// and requires every read endpoint to answer byte-identically at every
// step, snapshot versions included. At the end the leader drains and the
// follower (forced through the full-resync path by the parting
// checkpoint's pruning) must land on the same state hash.
func TestDirFollowerByteIdentity(t *testing.T) {
	dir := t.TempDir()
	leader, stop := startLeader(t, leaderOpts(dir))
	lh := leader.Handler()

	rep, err := New(Options{Source: dir, Serve: followerOpts()})
	if err != nil {
		t.Fatal(err)
	}
	fh := rep.Handler()

	var ids []int
	for i := 0; i < 30; i++ {
		// Full-width jobs: only the first can start, so every later one
		// stays queued (nothing can backfill) and cancels are deterministic.
		v := submitOne(t, lh, 8, 100+int64(i))
		ids = append(ids, v.ID)
		if err := rep.Sync(); err != nil {
			t.Fatalf("sync after submit %d: %v", i, err)
		}
		if i%11 == 10 {
			if rec := do(t, lh, "DELETE", fmt.Sprintf("/v1/jobs/%d", ids[len(ids)-3]), nil); rec.Code != http.StatusNoContent {
				t.Fatalf("cancel: %d %s", rec.Code, rec.Body.String())
			}
			// One pull per leader commit batch keeps the snapshot version
			// numbering in lockstep too.
			if err := rep.Sync(); err != nil {
				t.Fatalf("sync after cancel %d: %v", i, err)
			}
		}
		compareGET(t, lh, fh, "/v1/queue")
		compareGET(t, lh, fh, fmt.Sprintf("/v1/jobs/%d", v.ID))
		compareGET(t, lh, fh, "/healthz")
	}

	// The follower's /metrics is the leader's body plus the replica gauges.
	lm := do(t, lh, "GET", "/metrics", nil).Body.String()
	fm := do(t, fh, "GET", "/metrics", nil).Body.String()
	if !strings.HasPrefix(fm, lm) {
		t.Fatalf("follower metrics is not leader metrics + suffix:\nleader:\n%s\nfollower:\n%s", lm, fm)
	}
	if !strings.Contains(fm, "schedd_replica_applied_seq") {
		t.Fatalf("follower metrics missing replica gauges:\n%s", fm)
	}

	if err := stop(); err != nil {
		t.Fatalf("leader drain: %v", err)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	drainSync(t, rep)
	if lhash, fhash := leader.StateHash(), rep.Server().StateHash(); lhash != fhash {
		t.Fatalf("state hash diverged after drain: leader %#x, follower %#x", lhash, fhash)
	}
}

// TestHTTPFollowerByteIdentity runs the same lockstep over the leader's
// /v1/wal endpoint, with checkpoints every few records — the registered
// follower's retention floor must keep the journal tailable (zero forced
// resyncs) even though the leader checkpoints aggressively.
func TestHTTPFollowerByteIdentity(t *testing.T) {
	dir := t.TempDir()
	opts := leaderOpts(dir)
	opts.Durability.CheckpointOps = 4
	leader, stop := startLeader(t, opts)
	defer leader.Close()
	lh := leader.Handler()
	ts := httptest.NewServer(lh)
	defer ts.Close()

	rep, err := New(Options{Source: ts.URL, ID: "rt-1", Serve: followerOpts()})
	if err != nil {
		t.Fatal(err)
	}
	fh := rep.Handler()

	for i := 0; i < 24; i++ {
		v := submitOne(t, lh, 1+i%8, 200+int64(i))
		if err := rep.Sync(); err != nil {
			t.Fatalf("sync after write %d: %v", i, err)
		}
		compareGET(t, lh, fh, "/v1/queue")
		compareGET(t, lh, fh, fmt.Sprintf("/v1/jobs/%d", v.ID))
		compareGET(t, lh, fh, "/healthz")
	}

	info := rep.Replication()
	if info.Role != "follower" || info.LagOps != 0 || info.AppliedSeq == 0 || info.AppliedSeq != info.LeaderSeq {
		t.Fatalf("follower should be caught up: %+v", info)
	}
	if info.Resyncs != 0 {
		t.Fatalf("retention floor failed: follower was forced into %d resyncs", info.Resyncs)
	}

	var lrep serve.ReplicationInfo
	if err := json.Unmarshal(do(t, lh, "GET", "/v1/debug/replication", nil).Body.Bytes(), &lrep); err != nil {
		t.Fatal(err)
	}
	if lrep.Role != "leader" || len(lrep.Followers) != 1 || lrep.Followers[0].ID != "rt-1" {
		t.Fatalf("leader should list the registered follower: %+v", lrep)
	}
	if lrep.Seq != info.AppliedSeq {
		t.Fatalf("leader seq %d != follower applied %d", lrep.Seq, info.AppliedSeq)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPResyncAfterPrune starts a follower against a leader whose
// journal history is already compacted — the incremental position is gone,
// so the first pull must come back as a full-checkpoint resync and land
// the follower on the leader's exact state.
func TestHTTPResyncAfterPrune(t *testing.T) {
	dir := t.TempDir()
	opts := leaderOpts(dir)
	opts.Durability.CheckpointOps = 4
	leader, stop := startLeader(t, opts)
	defer leader.Close()
	lh := leader.Handler()
	for i := 0; i < 20; i++ {
		submitOne(t, lh, 1+i%8, 100)
	}
	ts := httptest.NewServer(lh)
	defer ts.Close()

	rep, err := New(Options{Source: ts.URL, ID: "late", Serve: followerOpts()})
	if err != nil {
		t.Fatal(err)
	}
	drainSync(t, rep)
	if n := rep.Replication().Resyncs; n != 1 {
		t.Fatalf("late follower should resync exactly once, got %d", n)
	}
	if lhash, fhash := leaderStateHash(t, lh), rep.Server().StateHash(); lhash != fhash {
		t.Fatalf("state hash diverged after resync: leader %#x, follower %#x", lhash, fhash)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// crashLeader writes a journal the way a daemon would and "crashes":
// closes the log without a drain record or parting checkpoint.
func crashLeader(t *testing.T, dir string, jobs int) {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var recs []wal.Record
	for i := 1; i <= jobs; i++ {
		recs = append(recs, wal.Record{Op: wal.OpSubmit, Job: &wal.JobRec{
			ID: i, Arrival: int64(i - 1), Runtime: 100, Estimate: 120, Width: 4, User: i % 5,
		}})
	}
	recs = append(recs, wal.Record{Op: wal.OpAdvance, To: 50})
	recs = append(recs, wal.Record{Op: wal.OpCancel, ID: jobs}) // still queued: 8 procs hold 2 width-4 jobs
	if err := l.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// shadowHash replays a journal through a fresh server and returns its
// digest — the differential check the crash drills use.
func shadowHash(t *testing.T, dir string) uint64 {
	t.Helper()
	st, err := wal.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := serve.New(followerOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := shadow.Replay(st.Ops()); err != nil {
		t.Fatal(err)
	}
	return shadow.StateHash()
}

// TestPromoteSharedDirTakeover is the failover path on shared storage: the
// leader dies mid-flight, the follower promotes over the same journal
// directory, finishes the tail it had not yet applied, fences the lineage
// with a term record, and starts accepting writes — with every record the
// dead leader committed intact.
func TestPromoteSharedDirTakeover(t *testing.T) {
	dir := t.TempDir()

	// A still-live leader must fence the takeover: its flock refuses Open.
	live, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(Options{Source: dir, Serve: followerOpts(), MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Promote(); !errors.Is(err, wal.ErrLocked) {
		t.Fatalf("promotion over a live leader should hit the flock fence, got %v", err)
	}
	if rep.Promoted() {
		t.Fatal("failed promotion must leave the replica a follower")
	}
	live.Close()

	crashLeader(t, dir, 30)
	// One bounded pull leaves the follower lagging; promotion must finish
	// the catch-up itself.
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if rep.AppliedSeq() >= 32 {
		t.Fatalf("test wants a lagging follower, applied %d", rep.AppliedSeq())
	}
	if err := rep.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if !rep.Promoted() || rep.Server().Term() != 1 {
		t.Fatalf("promoted=%v term=%d, want true/1", rep.Promoted(), rep.Server().Term())
	}
	if got, want := rep.Server().StateHash(), shadowHash(t, dir); got != want {
		t.Fatalf("promoted state %#x != journal shadow replay %#x", got, want)
	}

	// The promoted daemon serves writes; the journal keeps growing in the
	// same directory under the new term.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()
	h := rep.Handler()
	v := submitOne(t, h, 2, 500)
	if v.ID <= 30 {
		t.Fatalf("promoted leader re-issued an old job ID: %d", v.ID)
	}
	var info serve.ReplicationInfo
	if err := json.Unmarshal(do(t, h, "GET", "/v1/debug/replication", nil).Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Promoted || info.Role != "leader" || info.Term != 1 {
		t.Fatalf("replication view after promotion: %+v", info)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("promoted run: %v", err)
	}
	if err := rep.Server().Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteFreshDirSeedsJournal promotes an up-to-date follower into a
// fresh journal directory: its replicated history is re-journaled there,
// and a cold replay of the new journal reproduces the promoted state.
func TestPromoteFreshDirSeedsJournal(t *testing.T) {
	src := t.TempDir()
	crashLeader(t, src, 12)
	fresh := t.TempDir()
	rep, err := New(Options{Source: src, PromoteDir: fresh, Serve: followerOpts()})
	if err != nil {
		t.Fatal(err)
	}
	drainSync(t, rep)
	if err := rep.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if got, want := rep.Server().StateHash(), shadowHash(t, fresh); got != want {
		t.Fatalf("promoted state %#x != fresh journal shadow replay %#x", got, want)
	}
	if rep.Server().Term() != 1 {
		t.Fatalf("term = %d, want 1", rep.Server().Term())
	}
	if err := rep.Server().Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerWriteFence: every write on a follower is refused with 421
// and the leader's address.
func TestFollowerWriteFence(t *testing.T) {
	dir := t.TempDir()
	crashLeader(t, dir, 3)
	rep, err := New(Options{Source: dir, Serve: followerOpts()})
	if err != nil {
		t.Fatal(err)
	}
	drainSync(t, rep)
	h := rep.Handler()
	if rec := do(t, h, "POST", "/v1/jobs", serve.SubmitRequest{Width: 1, Runtime: 10}); rec.Code != http.StatusMisdirectedRequest || !strings.Contains(rec.Body.String(), dir) {
		t.Fatalf("follower submit: %d %s, want 421 naming the leader", rec.Code, rec.Body.String())
	}
	if rec := do(t, h, "DELETE", "/v1/jobs/1", nil); rec.Code != http.StatusMisdirectedRequest {
		t.Fatalf("follower cancel: %d, want 421", rec.Code)
	}
	// Reads keep working through the fence.
	if rec := do(t, h, "GET", "/v1/queue", nil); rec.Code != http.StatusOK {
		t.Fatalf("follower read: %d", rec.Code)
	}
}

// TestMinSeqBarrier: a ?min_seq= read holds until replication has applied
// that far, and fails loudly when it cannot.
func TestMinSeqBarrier(t *testing.T) {
	dir := t.TempDir()
	crashLeader(t, dir, 5)
	rep, err := New(Options{Source: dir, Serve: followerOpts()})
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Handler()

	released := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		released <- do(t, h, "GET", "/v1/queue?min_seq=5", nil)
	}()
	select {
	case rec := <-released:
		t.Fatalf("barrier released before replication caught up: %d %s", rec.Code, rec.Body.String())
	case <-time.After(50 * time.Millisecond):
	}
	drainSync(t, rep)
	select {
	case rec := <-released:
		if rec.Code != http.StatusOK {
			t.Fatalf("barrier read after catch-up: %d %s", rec.Code, rec.Body.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier never released")
	}

	old := barrierTimeout
	barrierTimeout = 30 * time.Millisecond
	defer func() { barrierTimeout = old }()
	if rec := do(t, h, "GET", "/v1/queue?min_seq=99999", nil); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("unreachable barrier: %d, want 504", rec.Code)
	}
}

// TestAutoPromoteOnLeaderDeath arms the health probe: when the leader
// stops answering, the Run loop promotes on its own and starts serving
// writes.
func TestAutoPromoteOnLeaderDeath(t *testing.T) {
	dir := t.TempDir()
	crashLeader(t, dir, 6)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rep, err := New(Options{
		Source: dir, Serve: followerOpts(),
		HealthURL: ts.URL, AutoPromote: 2, Poll: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()

	time.Sleep(50 * time.Millisecond)
	if rep.Promoted() {
		t.Fatal("replica promoted while the leader was healthy")
	}
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !rep.Promoted() {
		if time.Now().After(deadline) {
			t.Fatal("replica never auto-promoted after leader death")
		}
		time.Sleep(10 * time.Millisecond)
	}
	v := submitOne(t, rep.Handler(), 1, 100)
	if v.ID <= 6 {
		t.Fatalf("promoted leader re-issued job ID %d", v.ID)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	rep.Server().Close()
}

// TestLiveFollowStress tails a leader that is appending concurrently —
// writer goroutines hammering the leader while the follower pulls as fast
// as it can — and requires hash equality once everything quiesces. (The
// -race build of this test is the torn-read detector for the whole
// replication read path.)
func TestLiveFollowStress(t *testing.T) {
	dir := t.TempDir()
	leader, stop := startLeader(t, leaderOpts(dir))
	lh := leader.Handler()
	rep, err := New(Options{Source: dir, Serve: followerOpts(), MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < 200; i++ {
			v := submitOne(t, lh, 1+i%8, 100+int64(i%40))
			if i%13 == 12 {
				do(t, lh, "DELETE", fmt.Sprintf("/v1/jobs/%d", v.ID), nil)
			}
		}
	}()
	syncDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-writerDone:
				syncDone <- nil
				return
			default:
				if err := rep.Sync(); err != nil {
					syncDone <- err
					return
				}
			}
		}
	}()
	if err := <-syncDone; err != nil {
		t.Fatalf("concurrent sync: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("leader drain: %v", err)
	}
	if err := leader.Close(); err != nil {
		t.Fatal(err)
	}
	drainSync(t, rep)
	if lhash, fhash := leader.StateHash(), rep.Server().StateHash(); lhash != fhash {
		t.Fatalf("state hash diverged: leader %#x, follower %#x", lhash, fhash)
	}
}

// TestFollowerRestart rebuilds a follower from scratch against the same
// journal — a restart loses nothing and lands on the same state.
func TestFollowerRestart(t *testing.T) {
	dir := t.TempDir()
	crashLeader(t, dir, 9)
	first, err := New(Options{Source: dir, Serve: followerOpts()})
	if err != nil {
		t.Fatal(err)
	}
	drainSync(t, first)

	second, err := New(Options{Source: dir, Serve: followerOpts(), MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	drainSync(t, second)
	if a, b := first.Server().StateHash(), second.Server().StateHash(); a != b {
		t.Fatalf("restarted follower diverged: %#x vs %#x", a, b)
	}
	if first.AppliedSeq() != second.AppliedSeq() {
		t.Fatalf("applied %d vs %d", first.AppliedSeq(), second.AppliedSeq())
	}
}
