package replica

// The replica's HTTP surface is the daemon's own surface, served from the
// local mirror: reads delegate to the inner serve handler (hitting the
// same lock-free snapshot path a leader serves from), writes hit the inner
// follower fence and come back 421 with the leader's address. On top the
// replica adds its ?min_seq= read barrier, the replication debug and
// promote endpoints, and the schedd_replica_* gauge block appended to
// /metrics — appended, so a replica's metrics body is the leader's body
// plus a suffix, never a divergence.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/serve"
)

// barrierTimeout bounds how long a ?min_seq= read waits for replication to
// catch up before failing with 504 Gateway Timeout (the replica is a
// gateway to state that lives upstream, and upstream did not deliver it in
// time). A variable so tests can shorten it.
var barrierTimeout = 2 * time.Second

// barrierPoll paces the applied-seq checks inside the read barrier.
const barrierPoll = 2 * time.Millisecond

// Handler returns the replica's HTTP API. After promotion it delegates to
// the promoted server wholesale (except /v1/debug/replication, which keeps
// reporting the takeover).
func (r *Replica) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodGet && req.URL.Path == "/v1/debug/replication" {
			serve.WriteJSON(w, http.StatusOK, r.Replication())
			return
		}
		n := r.node.Load()
		if r.promoted.Load() {
			n.h.ServeHTTP(w, req)
			return
		}
		switch {
		case req.Method == http.MethodPost && req.URL.Path == "/v1/promote":
			if err := r.Promote(); err != nil {
				serve.WriteJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
				return
			}
			serve.WriteJSON(w, http.StatusOK, r.Replication())
			return
		case req.Method == http.MethodGet && req.URL.Path == "/metrics":
			n.h.ServeHTTP(w, req)
			// A federation proxying reads here on a client's behalf wants
			// the leader-shaped body; the replica gauge suffix is for
			// clients that addressed this replica directly.
			if req.Header.Get("X-Schedd-Fed-Proxy") == "" {
				r.writeReplicaMetrics(w)
			}
			return
		}
		if req.Method == http.MethodGet {
			if ms := req.URL.Query().Get("min_seq"); ms != "" {
				min, err := strconv.ParseUint(ms, 10, 64)
				if err != nil {
					serve.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": "bad min_seq"})
					return
				}
				if !r.waitApplied(min) {
					serve.WriteJSON(w, http.StatusGatewayTimeout, map[string]string{"error": fmt.Sprintf(
						"replica: applied seq %d has not reached min_seq %d within %s", r.applied.Load(), min, barrierTimeout)})
					return
				}
			}
		}
		n.h.ServeHTTP(w, req)
	})
}

// waitApplied blocks until the replica has applied through min (the
// read-your-writes barrier), or gives up after barrierTimeout.
func (r *Replica) waitApplied(min uint64) bool {
	deadline := time.Now().Add(barrierTimeout)
	for {
		if r.applied.Load() >= min || r.promoted.Load() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(barrierPoll)
	}
}

// writeReplicaMetrics appends the replication gauges to a /metrics body.
func (r *Replica) writeReplicaMetrics(w http.ResponseWriter) {
	info := r.Replication()
	fmt.Fprintf(w, "# HELP schedd_replica_applied_seq Last journal sequence applied by this replica.\n")
	fmt.Fprintf(w, "# TYPE schedd_replica_applied_seq gauge\n")
	fmt.Fprintf(w, "schedd_replica_applied_seq %d\n", info.AppliedSeq)
	fmt.Fprintf(w, "# HELP schedd_replica_leader_seq Leader's last durable journal sequence, as last observed.\n")
	fmt.Fprintf(w, "# TYPE schedd_replica_leader_seq gauge\n")
	fmt.Fprintf(w, "schedd_replica_leader_seq %d\n", info.LeaderSeq)
	fmt.Fprintf(w, "# HELP schedd_replica_lag_ops Journal records the replica is behind the leader.\n")
	fmt.Fprintf(w, "# TYPE schedd_replica_lag_ops gauge\n")
	fmt.Fprintf(w, "schedd_replica_lag_ops %d\n", info.LagOps)
	fmt.Fprintf(w, "# HELP schedd_replica_lag_virtual_seconds Virtual time the replica is behind the leader.\n")
	fmt.Fprintf(w, "# TYPE schedd_replica_lag_virtual_seconds gauge\n")
	fmt.Fprintf(w, "schedd_replica_lag_virtual_seconds %d\n", info.LagVirtual)
	fmt.Fprintf(w, "# HELP schedd_replica_resyncs_total Full-checkpoint resyncs this replica was forced into.\n")
	fmt.Fprintf(w, "# TYPE schedd_replica_resyncs_total counter\n")
	fmt.Fprintf(w, "schedd_replica_resyncs_total %d\n", info.Resyncs)
}
