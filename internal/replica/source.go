package replica

// A source yields the leader's journal incrementally. Two implementations:
// dirSource tails a shared journal directory with wal.Tailer (safe against
// the live appender — the WAL's single-writer framing makes a torn read
// distinguishable from corruption), and httpSource pulls the leader's
// GET /v1/wal stream. Both fall back to a full checkpoint image when the
// incremental position has been pruned.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/wal"
)

// resyncState is a full checkpoint+tail image the replica must rebuild
// from, with the sequence it lands the replica at.
type resyncState struct {
	state      *wal.State
	appliedSeq uint64
}

// pullResult is one replication pull: either an incremental record batch
// or a full resync image. hasMeta marks sources that report the leader's
// own position (HTTP headers); directory mode infers it from the records.
type pullResult struct {
	recs      []wal.Record
	state     *resyncState
	hasMeta   bool
	leaderSeq uint64
	leaderNow int64
}

type source interface {
	// pull returns records after seq `after`, at most max. An empty result
	// with nil state means caught up.
	pull(after uint64, max int) (pullResult, error)
}

// dirSource tails the leader's journal directory directly.
type dirSource struct {
	dir string
	tl  *wal.Tailer
}

func (d *dirSource) pull(after uint64, max int) (pullResult, error) {
	if d.tl == nil || d.tl.Seq() != after {
		d.tl = wal.NewTailer(d.dir, after)
	}
	recs, err := d.tl.Next(max)
	if errors.Is(err, wal.ErrGone) {
		// Our position was pruned (or the journal starts at a checkpoint):
		// load the full durable image. Load is read-only — no flock, no
		// truncation — so this is safe against the live leader.
		st, lerr := wal.Load(d.dir)
		if lerr != nil {
			return pullResult{}, lerr
		}
		d.tl = nil
		return pullResult{state: &resyncState{state: st, appliedSeq: st.NextSeq - 1}}, nil
	}
	if err != nil {
		return pullResult{}, err
	}
	return pullResult{recs: recs}, nil
}

// httpSource pulls the leader's /v1/wal endpoint.
type httpSource struct {
	base string // full endpoint URL
	id   string
	addr string        // advertised read URL, registered via &addr=
	wait time.Duration // long-poll duration, 0 for immediate pulls
	c    *http.Client
}

func newHTTPSource(src, id, advertise string, wait time.Duration) *httpSource {
	base := strings.TrimSuffix(src, "/")
	// A bare daemon address gets the standard endpoint appended; a URL that
	// already carries a path (a federation shard prefix like
	// http://host/v1/shards/2) gets /wal.
	if u, err := url.Parse(base); err == nil && (u.Path == "" || u.Path == "/") {
		base += "/v1/wal"
	} else {
		base += "/wal"
	}
	// The client timeout must outlast a parked long-poll or every caught-up
	// pull would "fail" at the deadline.
	timeout := 10 * time.Second
	if wait > 0 && wait+5*time.Second > timeout {
		timeout = wait + 5*time.Second
	}
	return &httpSource{base: base, id: id, addr: advertise, wait: wait, c: &http.Client{Timeout: timeout}}
}

func (h *httpSource) pull(after uint64, max int) (pullResult, error) {
	u := fmt.Sprintf("%s?from=%d&max=%d&follower=%s", h.base, after+1, max, url.QueryEscape(h.id))
	if h.addr != "" {
		u += "&addr=" + url.QueryEscape(h.addr)
	}
	if h.wait > 0 {
		u += "&wait=" + url.QueryEscape(h.wait.String())
	}
	resp, err := h.c.Get(u)
	if err != nil {
		return pullResult{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return pullResult{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return pullResult{}, fmt.Errorf("replica: leader %s: %s: %s", h.base, resp.Status, bytes.TrimSpace(body))
	}
	res := pullResult{hasMeta: true}
	res.leaderSeq, _ = strconv.ParseUint(resp.Header.Get("X-Schedd-Seq"), 10, 64)
	res.leaderNow, _ = strconv.ParseInt(resp.Header.Get("X-Schedd-Now"), 10, 64)
	if resp.Header.Get("X-Schedd-Resync") == "1" {
		st, applied, err := decodeResync(body)
		if err != nil {
			return pullResult{}, err
		}
		res.state = &resyncState{state: st, appliedSeq: applied}
		return res, nil
	}
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		rec, err := wal.DecodeRecord(line)
		if err != nil {
			return pullResult{}, fmt.Errorf("replica: leader %s sent a bad frame: %w", h.base, err)
		}
		res.recs = append(res.recs, rec)
	}
	return res, nil
}

// decodeResync parses a full-resync body: one checkpoint meta line, then
// the checkpoint's compacted ops and the journal tail, all CRC-framed.
func decodeResync(body []byte) (*wal.State, uint64, error) {
	st := &wal.State{}
	applied := uint64(0)
	first := true
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			m, err := wal.DecodeMeta(line)
			if err != nil {
				return nil, 0, fmt.Errorf("replica: bad resync meta: %w", err)
			}
			st.Checkpoint = &m
			applied = m.Seq
			continue
		}
		rec, err := wal.DecodeRecord(line)
		if err != nil {
			return nil, 0, fmt.Errorf("replica: bad resync frame: %w", err)
		}
		if st.Checkpoint != nil && rec.Seq <= st.Checkpoint.Seq {
			st.CheckpointOps = append(st.CheckpointOps, rec)
		} else {
			st.Tail = append(st.Tail, rec)
			if rec.Seq > applied {
				applied = rec.Seq
			}
		}
	}
	if st.Checkpoint == nil {
		return nil, 0, errors.New("replica: resync body carried no checkpoint")
	}
	st.NextSeq = applied + 1
	return st, applied, nil
}
