// Package core is the public face of the backfilling characterization
// library: it binds a workload, a scheduler (kind × priority policy), and
// the metrics pipeline into one deterministic simulation run, and provides
// the comparison views the paper's figures are built from (relative
// category-wise slowdown changes, schedule fingerprints, estimate-quality
// splits).
//
// A minimal use looks like:
//
//	model, _ := workload.NewCTC(0.9)
//	jobs, _ := model.Generate(5000, 1)
//	res, _ := core.Run(core.Config{Procs: model.Procs, Scheduler: "easy", Policy: "SJF"}, jobs)
//	fmt.Println(res.Report.Overall.MeanSlowdown)
package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config selects one simulation setup.
type Config struct {
	// Procs is the machine size (required, >= 1).
	Procs int
	// Scheduler is the scheduler kind accepted by sched.MakerFor:
	// "conservative", "easy", "none", "selective:<x>",
	// "selective:adaptive". Required.
	Scheduler string
	// Policy is the queue priority policy name: FCFS, SJF, XF, LJF, WFP.
	// Defaults to FCFS when empty.
	Policy string
	// Thresholds are the job-category boundaries; zero value means the
	// paper's Table 1 thresholds (1 hour, 8 processors).
	Thresholds job.Thresholds
	// Audit wraps the scheduler in the internal/audit invariant checker
	// (capacity, launch/arrival discipline, kill-at-estimate, reservation
	// and guarantee semantics); any violation fails the run. Cheap; on by
	// default in the experiment harness.
	Audit bool
}

// withDefaults fills in defaulted fields.
func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "FCFS"
	}
	if c.Thresholds == (job.Thresholds{}) {
		c.Thresholds = job.PaperThresholds()
	}
	return c
}

// Label names the configuration, e.g. "Conservative(SJF)".
func (c Config) Label() string {
	c = c.withDefaults()
	pol, err := sched.PolicyByName(c.Policy)
	if err != nil {
		return fmt.Sprintf("%s(%s)", c.Scheduler, c.Policy)
	}
	mk, err := sched.MakerFor(c.Scheduler, pol)
	if err != nil {
		return fmt.Sprintf("%s(%s)", c.Scheduler, c.Policy)
	}
	return mk(maxInt(c.Procs, 1)).Name()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Result is one finished simulation.
type Result struct {
	Config      Config
	Report      metrics.Report
	Outcomes    []metrics.Outcome
	Placements  []sim.Placement
	Fingerprint uint64
}

// Run simulates jobs under cfg. The input jobs are never modified; they
// must already carry the estimates the experiment calls for (see
// workload.ApplyEstimates).
func Run(cfg Config, jobs []*job.Job) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("core: config has %d processors", cfg.Procs)
	}
	pol, err := sched.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	mk, err := sched.MakerFor(cfg.Scheduler, pol)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s := mk(cfg.Procs)

	runnable := sim.Scheduler(s)
	var aud *audit.Auditor
	if cfg.Audit {
		aud = audit.New(cfg.Procs, s, audit.OptionsForKind(cfg.Scheduler, pol))
		runnable = aud
	}
	ps, err := sim.Run(sim.Machine{Procs: cfg.Procs}, jobs, runnable, nil)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if aud != nil {
		if err := aud.Err(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return &Result{
		Config:      cfg,
		Report:      metrics.Analyze(s.Name(), ps, cfg.Thresholds, cfg.Procs),
		Outcomes:    metrics.FromPlacements(ps, cfg.Thresholds),
		Placements:  ps,
		Fingerprint: metrics.Fingerprint(ps),
	}, nil
}

// CategoryChange holds Figure 2's view: the relative (%) change of mean
// slowdown of a candidate scheduler versus a baseline, per category and
// overall. Negative values mean the candidate improved that category.
type CategoryChange struct {
	Baseline  string
	Candidate string
	PerCat    [job.NumCategories]float64
	PerCatOK  [job.NumCategories]bool // false when the category was empty
	Overall   float64
	OverallOK bool
}

// Compare computes the relative slowdown change of candidate versus base.
func Compare(base, candidate *Result) CategoryChange {
	cc := CategoryChange{
		Baseline:  base.Report.Scheduler,
		Candidate: candidate.Report.Scheduler,
	}
	for _, c := range job.Categories() {
		b := base.Report.ByCategory[c].MeanSlowdown
		v := candidate.Report.ByCategory[c].MeanSlowdown
		if pc, err := metrics.PercentChange(b, v); err == nil {
			cc.PerCat[c] = pc
			cc.PerCatOK[c] = true
		}
	}
	if pc, err := metrics.PercentChange(base.Report.Overall.MeanSlowdown, candidate.Report.Overall.MeanSlowdown); err == nil {
		cc.Overall = pc
		cc.OverallOK = true
	}
	return cc
}

// SameSchedule reports whether two results placed every job at the same
// start time (the §4.1 equivalence check).
func SameSchedule(a, b *Result) bool {
	return a.Fingerprint == b.Fingerprint && len(a.Placements) == len(b.Placements)
}

// RunMatrix runs every scheduler kind × policy combination over the same
// workload and returns results keyed by label. Any single failure aborts.
func RunMatrix(procs int, jobs []*job.Job, kinds, policies []string) (map[string]*Result, error) {
	out := make(map[string]*Result, len(kinds)*len(policies))
	for _, k := range kinds {
		for _, p := range policies {
			cfg := Config{Procs: procs, Scheduler: k, Policy: p, Audit: true}
			res, err := Run(cfg, jobs)
			if err != nil {
				return nil, fmt.Errorf("core: %s/%s: %w", k, p, err)
			}
			out[res.Report.Scheduler] = res
		}
	}
	return out, nil
}
