package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

// Example runs the paper's headline comparison on a small synthetic SDSC
// workload: conservative backfilling against EASY with SJF priority.
func Example() {
	model, err := workload.NewSDSC(0.85)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := model.Generate(800, 1)
	if err != nil {
		log.Fatal(err)
	}

	cons, err := core.Run(core.Config{Procs: model.Procs, Scheduler: "conservative"}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	easy, err := core.Run(core.Config{Procs: model.Procs, Scheduler: "easy", Policy: "SJF"}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EASY(SJF) beats conservative on mean slowdown:",
		easy.Report.Overall.MeanSlowdown < cons.Report.Overall.MeanSlowdown)
	// Output:
	// EASY(SJF) beats conservative on mean slowdown: true
}

// ExampleCompare reproduces the Figure 2 view: the relative per-category
// slowdown change of one scheduler against a baseline.
func ExampleCompare() {
	model, err := workload.NewCTC(0.85)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := model.Generate(1500, 42)
	if err != nil {
		log.Fatal(err)
	}
	base, err := core.Run(core.Config{Procs: model.Procs, Scheduler: "conservative"}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	cand, err := core.Run(core.Config{Procs: model.Procs, Scheduler: "easy", Policy: "SJF"}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	cc := core.Compare(base, cand)
	fmt.Println("long-narrow jobs improved:", cc.PerCatOK[job.LongNarrow] && cc.PerCat[job.LongNarrow] < 0)
	// Output:
	// long-narrow jobs improved: true
}

// ExampleSameSchedule demonstrates the paper's §4.1 equivalence: with
// accurate estimates, conservative backfilling yields the identical
// schedule no matter the priority policy.
func ExampleSameSchedule() {
	model, err := workload.NewCTC(0.85)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := model.Generate(600, 7) // exact estimates by construction
	if err != nil {
		log.Fatal(err)
	}
	fcfs, err := core.Run(core.Config{Procs: model.Procs, Scheduler: "conservative", Policy: "FCFS"}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	sjf, err := core.Run(core.Config{Procs: model.Procs, Scheduler: "conservative", Policy: "SJF"}, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("identical schedules:", core.SameSchedule(fcfs, sjf))
	// Output:
	// identical schedules: true
}
