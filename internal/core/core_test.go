package core

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/workload"
)

// smallWorkload generates a deterministic busy workload on a 64-proc
// machine.
func smallWorkload(t *testing.T, n int, seed int64) []*job.Job {
	t.Helper()
	m := &workload.Model{}
	*m = *mustModel(t)
	jobs, err := m.Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func mustModel(t *testing.T) *workload.Model {
	t.Helper()
	m, err := workload.ByName("SDSC", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunBasic(t *testing.T) {
	jobs := smallWorkload(t, 300, 1)
	res, err := Run(Config{Procs: 128, Scheduler: "easy", Policy: "FCFS", Audit: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Overall.N != 300 {
		t.Fatalf("N = %d", res.Report.Overall.N)
	}
	if res.Report.Overall.MeanSlowdown < 1 {
		t.Fatalf("mean slowdown = %v, must be >= 1", res.Report.Overall.MeanSlowdown)
	}
	if res.Report.Scheduler != "EASY(FCFS)" {
		t.Fatalf("scheduler name = %q", res.Report.Scheduler)
	}
	if len(res.Placements) != 300 || len(res.Outcomes) != 300 {
		t.Fatal("missing placements/outcomes")
	}
}

func TestRunDefaults(t *testing.T) {
	jobs := smallWorkload(t, 50, 2)
	res, err := Run(Config{Procs: 128, Scheduler: "conservative"}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Policy != "FCFS" {
		t.Fatalf("default policy = %q", res.Config.Policy)
	}
	if res.Config.Thresholds != job.PaperThresholds() {
		t.Fatal("default thresholds not applied")
	}
}

func TestRunErrors(t *testing.T) {
	jobs := smallWorkload(t, 10, 3)
	cases := []Config{
		{Procs: 0, Scheduler: "easy"},
		{Procs: 128, Scheduler: "bogus"},
		{Procs: 128, Scheduler: "easy", Policy: "NOPE"},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, jobs); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestLabel(t *testing.T) {
	cfg := Config{Procs: 16, Scheduler: "conservative", Policy: "SJF"}
	if got := cfg.Label(); got != "Conservative(SJF)" {
		t.Fatalf("Label = %q", got)
	}
	bad := Config{Procs: 16, Scheduler: "weird", Policy: "SJF"}
	if got := bad.Label(); !strings.Contains(got, "weird") {
		t.Fatalf("fallback label = %q", got)
	}
}

func TestSameScheduleEquivalence(t *testing.T) {
	// §4.1: conservative with exact estimates is policy-invariant.
	jobs := workload.ApplyEstimates(smallWorkload(t, 400, 5), workload.Exact{}, 1)
	base, err := Run(Config{Procs: 128, Scheduler: "conservative", Policy: "FCFS", Audit: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"SJF", "XF"} {
		other, err := Run(Config{Procs: 128, Scheduler: "conservative", Policy: pol, Audit: true}, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !SameSchedule(base, other) {
			t.Fatalf("conservative(%s) schedule differs from FCFS under exact estimates", pol)
		}
	}
	// EASY(SJF) should differ from conservative on a busy trace.
	easy, err := Run(Config{Procs: 128, Scheduler: "easy", Policy: "SJF", Audit: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if SameSchedule(base, easy) {
		t.Fatal("EASY(SJF) identical to conservative — suspicious")
	}
}

func TestCompare(t *testing.T) {
	jobs := workload.ApplyEstimates(smallWorkload(t, 500, 7), workload.Exact{}, 1)
	cons, err := Run(Config{Procs: 128, Scheduler: "conservative", Policy: "FCFS", Audit: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	easy, err := Run(Config{Procs: 128, Scheduler: "easy", Policy: "SJF", Audit: true}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cc := Compare(cons, easy)
	if cc.Baseline != "Conservative(FCFS)" || cc.Candidate != "EASY(SJF)" {
		t.Fatalf("labels = %q vs %q", cc.Baseline, cc.Candidate)
	}
	if !cc.OverallOK {
		t.Fatal("overall change not computable")
	}
	okCount := 0
	for _, c := range job.Categories() {
		if cc.PerCatOK[c] {
			okCount++
		}
	}
	if okCount < 3 {
		t.Fatalf("only %d categories populated", okCount)
	}
}

func TestRunMatrix(t *testing.T) {
	jobs := smallWorkload(t, 150, 9)
	rs, err := RunMatrix(128, jobs, []string{"easy", "conservative"}, []string{"FCFS", "SJF"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, want := range []string{"EASY(FCFS)", "EASY(SJF)", "Conservative(FCFS)", "Conservative(SJF)"} {
		if rs[want] == nil {
			t.Errorf("missing %s", want)
		}
	}
	if _, err := RunMatrix(128, jobs, []string{"bogus"}, []string{"FCFS"}); err == nil {
		t.Fatal("bad kind should error")
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	jobs := smallWorkload(t, 200, 11)
	cfg := Config{Procs: 128, Scheduler: "selective:2", Policy: "XF", Audit: true}
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatal("same config+workload produced different schedules")
	}
}
