package audit

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// fake is a scriptable scheduler for violation tests: Launch returns
// whatever the test queued via pending, and the optional hooks fake the
// reservation/guarantee interfaces.
type fake struct {
	queue   []*job.Job
	pending []*job.Job
	resv    map[int]int64
	guar    map[int]int64
}

func (f *fake) Name() string                 { return "fake" }
func (f *fake) Arrive(_ int64, j *job.Job)   { f.queue = append(f.queue, j) }
func (f *fake) Complete(_ int64, _ *job.Job) {}
func (f *fake) Launch(_ int64) []*job.Job {
	out := f.pending
	f.pending = nil
	return out
}
func (f *fake) QueuedJobs() []*job.Job { return f.queue }

// fakeReserving additionally exposes the conservative Reservation hook.
type fakeReserving struct{ fake }

func (f *fakeReserving) Reservation(id int) (int64, bool) {
	t, ok := f.resv[id]
	return t, ok
}

// fakeSlack exposes both hooks, so it is audited under slack semantics.
type fakeSlack struct{ fakeReserving }

func (f *fakeSlack) Guarantee(id int) (int64, bool) {
	g, ok := f.guar[id]
	return g, ok
}

func wantRules(t *testing.T, a *Auditor, rules ...string) {
	t.Helper()
	got := make(map[string]bool)
	for _, v := range a.Violations() {
		got[v.Rule] = true
	}
	for _, r := range rules {
		if !got[r] {
			t.Errorf("missing violation %q; recorded: %v", r, a.Violations())
		}
	}
	if a.Err() == nil {
		t.Errorf("Err() = nil with %d expected violations", len(rules))
	}
}

func exact(id int, arr, rt int64, w int) *job.Job {
	return &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt, Width: w}
}

func TestCapacityExceeded(t *testing.T) {
	f := &fake{}
	a := New(4, f, Options{})
	j1, j2 := exact(1, 0, 10, 3), exact(2, 0, 10, 3)
	a.Arrive(0, j1)
	a.Arrive(0, j2)
	f.pending = []*job.Job{j1, j2}
	a.Launch(0)
	wantRules(t, a, RuleCapacity)
}

func TestLaunchDiscipline(t *testing.T) {
	f := &fake{}
	a := New(8, f, Options{})
	j1 := exact(1, 0, 10, 1)
	ghost := exact(9, 0, 10, 1) // never arrives
	a.Arrive(0, j1)
	f.pending = []*job.Job{j1, j1, ghost}
	a.Launch(0)
	wantRules(t, a, RuleDuplicateInBatch, RuleLaunchUnknown)

	// Starting an already-running job in a later batch.
	f.pending = []*job.Job{j1}
	a.Launch(1)
	wantRules(t, a, RuleDoubleLaunch)

	// Completing it, then starting it again.
	a.Complete(10, j1)
	f.pending = []*job.Job{j1}
	a.Launch(11)
	wantRules(t, a, RuleRelaunchCompleted)
}

func TestArrivalDiscipline(t *testing.T) {
	f := &fake{}
	a := New(8, f, Options{})
	j := exact(1, 5, 10, 1)
	a.Arrive(0, j) // delivered before its submission time
	a.Arrive(0, j) // and twice
	f.pending = []*job.Job{j}
	a.Launch(0) // started before arrival
	wantRules(t, a, RuleArrivalTime, RuleDoubleArrive, RuleLaunchBeforeArrival)
}

func TestCompleteNotRunning(t *testing.T) {
	f := &fake{}
	a := New(8, f, Options{})
	j := exact(1, 0, 10, 1)
	a.Arrive(0, j)
	a.Complete(10, j)
	wantRules(t, a, RuleCompleteNotRunning)
}

func TestKillAtEstimate(t *testing.T) {
	f := &fake{}
	a := New(8, f, Options{})
	j := exact(1, 0, 10, 1)
	a.Arrive(0, j)
	f.pending = []*job.Job{j}
	a.Launch(0)
	a.Complete(7, j) // finished after 7s of a 10s runtime: engine bug
	wantRules(t, a, RuleKillAtEstimate)
}

func TestReservationMonotone(t *testing.T) {
	f := &fakeReserving{}
	f.resv = map[int]int64{1: 20}
	a := New(8, f, Options{})
	j := exact(1, 0, 10, 1)
	a.Arrive(0, j)   // reservation captured: 20
	f.resv[1] = 35   // a later "compression" moved it backwards
	a.Complete(5, j) // any event observes the drift (complete-not-running too)
	wantRules(t, a, RuleReservationMonotone)
}

func TestStartByReservation(t *testing.T) {
	f := &fakeReserving{}
	f.resv = map[int]int64{1: 5}
	a := New(8, f, Options{})
	j := exact(1, 0, 30, 1)
	a.Arrive(0, j)
	delete(f.resv, 1)
	f.pending = []*job.Job{j}
	a.Launch(9) // past the granted reservation
	wantRules(t, a, RuleStartByReservation)
}

func TestSlackGuarantee(t *testing.T) {
	f := &fakeSlack{}
	f.resv = map[int]int64{1: 5}
	f.guar = map[int]int64{1: 12}
	a := New(8, f, Options{})
	j := exact(1, 0, 30, 1)
	a.Arrive(0, j)
	f.resv[1] = 15 // moved later: allowed under slack, but past the guarantee
	f.pending = nil
	a.Launch(3)
	f.pending = []*job.Job{j}
	a.Launch(20) // and the start itself breaks the guarantee
	wantRules(t, a, RuleSlackGuarantee)
	for _, v := range a.Violations() {
		if v.Rule == RuleReservationMonotone {
			t.Errorf("slack semantics must allow reservations to move later: %v", v)
		}
	}
}

func TestHeadNoDelay(t *testing.T) {
	f := &fake{}
	a := New(2, f, Options{Policy: sched.FCFS{}, CheckHeadGuarantee: true})
	j1, j2 := exact(1, 0, 10, 2), exact(2, 0, 10, 2)
	a.Arrive(0, j1)
	a.Arrive(0, j2)
	f.pending = []*job.Job{j1}
	a.Launch(0) // head j2 blocked; shadow bound = 10
	a.Complete(10, j1)
	a.Launch(10) // lazy scheduler starts nothing
	f.pending = []*job.Job{j2}
	f.queue = nil
	a.Launch(13) // head started past its bound
	wantRules(t, a, RuleHeadNoDelay)
}

func TestFailModePanics(t *testing.T) {
	f := &fake{}
	a := New(4, f, Options{Mode: Fail})
	j1, j2 := exact(1, 0, 10, 3), exact(2, 0, 10, 3)
	a.Arrive(0, j1)
	a.Arrive(0, j2)
	f.pending = []*job.Job{j1, j2}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Fail mode did not panic on a capacity violation")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, RuleCapacity) {
			t.Fatalf("panic %v does not name the %s rule", r, RuleCapacity)
		}
	}()
	a.Launch(0)
}

func TestMaxRecordedTruncates(t *testing.T) {
	f := &fake{}
	a := New(8, f, Options{MaxRecorded: 2})
	for i := 1; i <= 5; i++ {
		j := exact(i, 3, 10, 1)
		a.Arrive(0, j) // arrival-time violation each
	}
	rep := a.Report()
	if len(rep.Violations) != 2 || rep.Truncated != 3 {
		t.Fatalf("recorded %d truncated %d, want 2 and 3", len(rep.Violations), rep.Truncated)
	}
	if rep.Err() == nil {
		t.Fatalf("truncated report must still error")
	}
}

// TestCleanRunThroughEngine wraps every registered scheduler and runs a
// small workload end-to-end through sim.Run: the auditor must stay silent
// and must not change the schedule.
func TestCleanRunThroughEngine(t *testing.T) {
	const procs = 8
	jobs := []*job.Job{
		exact(1, 0, 100, 6),
		exact(2, 1, 100, 6),
		exact(3, 2, 50, 4),
		{ID: 4, Arrival: 3, Runtime: 30, Estimate: 90, Width: 2},
		{ID: 5, Arrival: 40, Runtime: 10, Estimate: 10, Width: 8},
	}
	for _, kind := range sched.Kinds() {
		for _, polName := range []string{"FCFS", "SJF", "XF"} {
			pol, err := sched.PolicyByName(polName)
			if err != nil {
				t.Fatal(err)
			}
			mk, err := sched.MakerFor(kind, pol)
			if err != nil {
				t.Fatal(err)
			}
			bare, err := sim.Run(sim.Machine{Procs: procs}, jobs, mk(procs), nil)
			if err != nil {
				t.Fatalf("%s/%s unwrapped: %v", kind, polName, err)
			}
			ps, rep, err := Run(procs, jobs, mk(procs), OptionsForKind(kind, pol))
			if err != nil {
				t.Fatalf("%s/%s audited: %v", kind, polName, err)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("%s/%s: %v", kind, polName, err)
			}
			if len(ps) != len(bare) {
				t.Fatalf("%s/%s: wrapper changed placement count", kind, polName)
			}
			for i := range ps {
				if ps[i].Job.ID != bare[i].Job.ID || ps[i].Start != bare[i].Start || ps[i].End != bare[i].End {
					t.Fatalf("%s/%s: wrapper changed the schedule at %d: %+v vs %+v",
						kind, polName, i, ps[i], bare[i])
				}
			}
		}
	}
}
