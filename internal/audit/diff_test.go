package audit

import (
	"testing"

	"repro/internal/job"
	"repro/internal/stats"
)

// randomWorkload builds a small random job set. exactEst forces estimate ==
// runtime; otherwise estimates overrun runtimes by a random factor.
func randomWorkload(r *stats.RNG, procs, maxJobs int, exactEst bool) []*job.Job {
	n := r.Intn(maxJobs-2) + 3
	jobs := make([]*job.Job, 0, n)
	clock := int64(0)
	for i := 1; i <= n; i++ {
		clock += int64(r.Intn(30))
		rt := int64(r.Intn(60) + 1)
		est := rt
		if !exactEst {
			est = rt + int64(r.Intn(int(rt)*3+1))
		}
		jobs = append(jobs, &job.Job{
			ID: i, Arrival: clock, Runtime: rt, Estimate: est,
			Width: r.Intn(procs) + 1,
		})
	}
	return jobs
}

// TestDifferentialRandomExact is the acceptance gate: on 500 random
// workloads with exact estimates, every audited cell must be clean and all
// relational invariants — including agreement with the brute-force oracle —
// must hold.
func TestDifferentialRandomExact(t *testing.T) {
	const procs = 8
	opt := DiffOptions{
		Schedulers: []string{
			"conservative", "conservative-nc", "easy", "easy:bestfit",
			"easy:shortestfit", "none", "depth:1", "slack:0",
		},
		Policies: []string{"FCFS", "SJF"},
	}
	r := stats.NewRNG(2024)
	for trial := 0; trial < 500; trial++ {
		jobs := randomWorkload(r, procs, 20, true)
		rep, err := Differential(procs, jobs, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !rep.Exact {
			t.Fatalf("trial %d: workload not detected as exact", trial)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("trial %d: %v\nworkload: %v", trial, err, jobs)
		}
	}
}

// TestDifferentialRandomInexact exercises the full scheduler registry —
// preemption, selective promotion, lookahead, slack — under overestimated
// runtimes, where compression, shadow recomputation and kill-at-estimate
// semantics all fire.
func TestDifferentialRandomInexact(t *testing.T) {
	const procs = 8
	opt := DiffOptions{Policies: []string{"FCFS", "XF"}}
	r := stats.NewRNG(2025)
	for trial := 0; trial < 200; trial++ {
		jobs := randomWorkload(r, procs, 16, false)
		rep, err := Differential(procs, jobs, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.Exact {
			continue // rare all-exact draw: still fine, just not the target
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("trial %d: %v\nworkload: %v", trial, err, jobs)
		}
	}
}

func TestDifferentialSetupErrors(t *testing.T) {
	jobs := []*job.Job{exact(1, 0, 10, 1)}
	if _, err := Differential(0, jobs, DiffOptions{}); err == nil {
		t.Errorf("procs 0 accepted")
	}
	if _, err := Differential(4, jobs, DiffOptions{Schedulers: []string{"bogus"}}); err == nil {
		t.Errorf("unknown scheduler kind accepted")
	}
	if _, err := Differential(4, jobs, DiffOptions{Policies: []string{"bogus"}}); err == nil {
		t.Errorf("unknown policy accepted")
	}
}

// TestOracleStarts pins the oracle itself on the canonical backfill
// scenario: J3 backfills beside J1 while J2 waits for the whole machine.
func TestOracleStarts(t *testing.T) {
	jobs := []*job.Job{
		exact(1, 0, 100, 6),
		exact(2, 1, 100, 6),
		exact(3, 2, 50, 4),
	}
	got := OracleStarts(10, jobs)
	want := map[int]int64{1: 0, 2: 100, 3: 2}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("job %d: oracle start %d, want %d", id, got[id], w)
		}
	}
}
