// Package audit enforces scheduler-correctness invariants online. The
// paper's contribution is a characterization of what each backfilling
// strategy *guarantees* — conservative backfilling promises every job its
// reservation, EASY promises only the head job, slack-based bounds every
// delay — and those guarantees deserve machine checks, not eyeballed
// averages.
//
// The package has two layers:
//
//   - Auditor wraps any sim.Scheduler, intercepts every Arrive / Complete /
//     Launch exchange with the event engine, and checks the invariant
//     catalog after each one (see the Rule* constants). Violations are
//     recorded for post-run inspection or, in Fail mode, panic immediately
//     (the mode fuzz targets use).
//   - Differential (diff.go) runs one workload through many scheduler ×
//     policy cells, each under an Auditor, plus independent brute-force
//     oracles (oracle.go), and cross-checks relational invariants between
//     cells — schedule equalities the design proves and bounds the paper
//     relies on.
//
// The Auditor deliberately imports only sim and job (not sched): its own
// Policy interface is satisfied structurally by sched.Policy, and the
// scheduler-family hooks (Reservation, Guarantee) are probed through
// anonymous interfaces. Scheduler-specific knowledge lives in the caller's
// Options (see OptionsForKind).
package audit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/job"
	"repro/internal/sim"
)

// Mode selects how the Auditor reacts to a violation.
type Mode int

const (
	// Record collects violations for inspection after the run via Err,
	// Violations or Report. The default.
	Record Mode = iota
	// Fail panics on the first violation with the formatted finding. Fuzz
	// targets use it so a violation surfaces as a reported crash even when
	// the harness never reaches the post-run check.
	Fail
)

// Policy is the queue-priority contract the head-guarantee check needs.
// sched.Policy satisfies it structurally; it is re-declared here so this
// package does not import sched's wrapper-facing half.
type Policy interface {
	Name() string
	// Less orders job a before b at time now; it must induce a strict
	// total order for any fixed now.
	Less(a, b *job.Job, now int64) bool
}

// Invariant rule names, used as Violation.Rule. Together they form the
// auditor's invariant catalog (documented in DESIGN.md §7).
const (
	// RuleArrivalTime: Arrive must be delivered exactly at the job's
	// submission time.
	RuleArrivalTime = "arrival-time"
	// RuleDoubleArrive: a job arrives at most once.
	RuleDoubleArrive = "double-arrive"
	// RuleLaunchUnknown: only previously arrived jobs may start.
	RuleLaunchUnknown = "launch-unknown"
	// RuleLaunchBeforeArrival: no job starts before its arrival time.
	RuleLaunchBeforeArrival = "launch-before-arrival"
	// RuleDoubleLaunch: a running job must not be started again.
	RuleDoubleLaunch = "double-launch"
	// RuleRelaunchCompleted: a completed job must never run again.
	RuleRelaunchCompleted = "relaunch-completed"
	// RuleDuplicateInBatch: one Launch batch must not contain a job twice.
	RuleDuplicateInBatch = "duplicate-in-batch"
	// RuleCapacity: the processors in use never exceed the machine size.
	RuleCapacity = "capacity"
	// RuleCompleteNotRunning: only running jobs complete.
	RuleCompleteNotRunning = "complete-not-running"
	// RuleKillAtEstimate: a job's total running time equals its actual
	// runtime and never exceeds its estimate (jobs are killed at the wall
	// limit, and resumed jobs run only their remainder).
	RuleKillAtEstimate = "kill-at-estimate"
	// RuleSuspendNotRunning: only running jobs may be preempted.
	RuleSuspendNotRunning = "suspend-not-running"
	// RuleReservationMonotone: a conservative reservation never moves
	// later (compression may only improve it).
	RuleReservationMonotone = "reservation-monotone"
	// RuleStartByReservation: a job starts no later than the reservation
	// granted at its arrival (conservative's no-delay guarantee).
	RuleStartByReservation = "start-by-reservation"
	// RuleSlackGuarantee: a slack-based job starts no later than its fixed
	// guarantee, and its reservation never drifts past the guarantee.
	RuleSlackGuarantee = "slack-guarantee"
	// RuleHeadNoDelay: EASY's single guarantee — the blocked head of the
	// queue starts no later than the shadow time computed from running
	// jobs' estimates (backfills must never push it past that bound).
	RuleHeadNoDelay = "head-no-delay"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Time is the simulation instant the breach was observed at.
	Time int64
	// Rule is the Rule* constant that was violated.
	Rule string
	// Job is the job involved, when there is one.
	Job *job.Job
	// Detail is a human-readable account of the breach.
	Detail string
}

// String renders the violation for logs and test failures.
func (v Violation) String() string {
	if v.Job != nil {
		return fmt.Sprintf("t=%d [%s] %v: %s", v.Time, v.Rule, v.Job, v.Detail)
	}
	return fmt.Sprintf("t=%d [%s] %s", v.Time, v.Rule, v.Detail)
}

// Report is the structured outcome of an audited run.
type Report struct {
	// Scheduler is the wrapped scheduler's Name.
	Scheduler string
	// Violations holds every recorded breach, in observation order, up to
	// the recording cap.
	Violations []Violation
	// Truncated counts breaches beyond the cap that were dropped.
	Truncated int
}

// Err summarises the report as an error, or nil when the run was clean.
func (r Report) Err() error {
	n := len(r.Violations) + r.Truncated
	if n == 0 {
		return nil
	}
	return fmt.Errorf("audit: %s: %d invariant violations; first: %s",
		r.Scheduler, n, r.Violations[0])
}

// Options configure an Auditor.
type Options struct {
	// Mode is Record (default) or Fail.
	Mode Mode
	// Policy, when set, lets the auditor identify the queue head for the
	// head-guarantee check. Required for CheckHeadGuarantee.
	Policy Policy
	// CheckHeadGuarantee enables the EASY head no-delay check. Only valid
	// for EASY-family schedulers (the invariant does not hold for
	// schedulers that deliberately hold startable work, like selective
	// promotion, or that suspend runners).
	CheckHeadGuarantee bool
	// MaxRecorded caps recorded violations (0 means the default of 100).
	// Further breaches only increment Report.Truncated.
	MaxRecorded int
}

// OptionsForKind returns the audit options appropriate for a scheduler
// kind string as understood by sched.MakerFor: the head-guarantee check is
// enabled for the EASY family, reservation- and slack-guarantee checks are
// probed from the scheduler itself and need no configuration.
func OptionsForKind(kind string, pol Policy) Options {
	opts := Options{Policy: pol}
	if kind == "easy" || strings.HasPrefix(kind, "easy:") {
		opts.CheckHeadGuarantee = true
	}
	return opts
}

// reservist is the conservative-family hook: the guaranteed start of a
// queued job. Probed, never required.
type reservist interface {
	Reservation(id int) (int64, bool)
}

// guarantor is the slack-family hook: the latest permitted start of a
// queued job. A scheduler exposing both Reservation and Guarantee is
// audited under slack semantics (reservations may move later, but never
// past the guarantee); Reservation alone means conservative semantics
// (reservations only ever move earlier).
type guarantor interface {
	Guarantee(id int) (int64, bool)
}

// canceler mirrors sched.Canceler for delegation.
type canceler interface {
	Cancel(now int64, j *job.Job) bool
}

// jobState is the auditor's ground-truth mirror for one job.
type jobState struct {
	j         *job.Job
	arrived   bool
	running   bool
	suspended bool
	done      bool
	cancelled bool
	lastStart int64
	consumed  int64 // runtime finished before the current dispatch
	// Reservation tracking (conservative / slack families).
	hasResv     bool
	initialResv int64 // granted at arrival; the no-delay bound
	lastResv    int64 // most recently observed reservation
	hasGuar     bool
	guarantee   int64
}

// estEnd is when the job's current dispatch ends by its estimate.
func (st *jobState) estEnd() int64 {
	return st.lastStart + (st.j.Estimate - st.consumed)
}

// Auditor wraps a sim.Scheduler and checks the invariant catalog on every
// engine interaction. It implements sim.Scheduler, sim.Waker and
// sim.Preemptor (delegating to the wrapped scheduler's capabilities), so
// wrapping never changes engine behaviour — only observes it.
type Auditor struct {
	inner sim.Scheduler
	procs int
	opts  Options
	max   int

	inUse   int
	jobs    map[int]*jobState
	queued  map[int]*jobState // arrived, not running/suspended/done/cancelled
	active  map[int]*jobState // currently running
	resv    reservist         // non-nil when inner exposes Reservation
	guar    guarantor         // non-nil when inner exposes Guarantee
	preempt sim.Preemptor     // non-nil when inner preempts
	waker   sim.Waker         // non-nil when inner wakes

	// Head-guarantee tracking: the current blocked head and the earliest
	// shadow bound observed while it has continuously been head.
	headID    int
	headBound int64

	violations []Violation
	truncated  int
}

// New wraps inner with an auditor for a machine with procs processors. It
// panics if procs < 1, inner is nil, or CheckHeadGuarantee is requested
// without a Policy.
func New(procs int, inner sim.Scheduler, opts Options) *Auditor {
	if procs < 1 {
		panic(fmt.Sprintf("audit: New with %d processors", procs))
	}
	if inner == nil {
		panic("audit: New with nil scheduler")
	}
	if opts.CheckHeadGuarantee && opts.Policy == nil {
		panic("audit: CheckHeadGuarantee requires a Policy")
	}
	max := opts.MaxRecorded
	if max <= 0 {
		max = 100
	}
	a := &Auditor{
		inner:  inner,
		procs:  procs,
		opts:   opts,
		max:    max,
		jobs:   make(map[int]*jobState),
		queued: make(map[int]*jobState),
		active: make(map[int]*jobState),
	}
	a.resv, _ = inner.(reservist)
	a.guar, _ = inner.(guarantor)
	a.preempt, _ = inner.(sim.Preemptor)
	a.waker, _ = inner.(sim.Waker)
	return a
}

// Inner returns the wrapped scheduler.
func (a *Auditor) Inner() sim.Scheduler { return a.inner }

// Name delegates to the wrapped scheduler, so reports and metrics are
// unchanged by auditing.
func (a *Auditor) Name() string { return a.inner.Name() }

// Violations returns the recorded breaches.
func (a *Auditor) Violations() []Violation {
	return append([]Violation(nil), a.violations...)
}

// Report returns the structured outcome so far.
func (a *Auditor) Report() Report {
	return Report{
		Scheduler:  a.inner.Name(),
		Violations: a.Violations(),
		Truncated:  a.truncated,
	}
}

// Err returns an error summarising all violations, or nil.
func (a *Auditor) Err() error { return a.Report().Err() }

// violate records (or, in Fail mode, panics with) one breach.
func (a *Auditor) violate(now int64, rule string, j *job.Job, format string, args ...any) {
	v := Violation{Time: now, Rule: rule, Job: j, Detail: fmt.Sprintf(format, args...)}
	if a.opts.Mode == Fail {
		panic("audit: " + v.String())
	}
	if len(a.violations) >= a.max {
		a.truncated++
		return
	}
	a.violations = append(a.violations, v)
}

// Arrive checks arrival invariants, delegates, and snapshots any
// reservation the scheduler granted.
func (a *Auditor) Arrive(now int64, j *job.Job) {
	st := a.jobs[j.ID]
	if st == nil {
		st = &jobState{j: j}
		a.jobs[j.ID] = st
	}
	if st.arrived {
		a.violate(now, RuleDoubleArrive, j, "arrived again")
	}
	if now != j.Arrival {
		a.violate(now, RuleArrivalTime, j, "delivered at %d, submitted at %d", now, j.Arrival)
	}
	st.arrived = true
	a.queued[j.ID] = st
	a.inner.Arrive(now, j)
	a.afterEvent(now)
}

// Complete checks completion invariants (including kill-at-estimate
// semantics) and delegates.
func (a *Auditor) Complete(now int64, j *job.Job) {
	st := a.jobs[j.ID]
	if st == nil || !st.running {
		a.violate(now, RuleCompleteNotRunning, j, "completed while not running")
	} else {
		ran := st.consumed + (now - st.lastStart)
		if ran != j.Runtime {
			a.violate(now, RuleKillAtEstimate, j,
				"finished after running %d, actual runtime %d", ran, j.Runtime)
		}
		if ran > j.Estimate {
			a.violate(now, RuleKillAtEstimate, j,
				"ran %d past its %d estimate (jobs are killed at the wall limit)", ran, j.Estimate)
		}
		st.running = false
		st.done = true
		a.inUse -= j.Width
		delete(a.active, j.ID)
	}
	a.inner.Complete(now, j)
	a.afterEvent(now)
}

// Launch delegates one scheduling pass and audits the returned batch.
func (a *Auditor) Launch(now int64) []*job.Job {
	starts := a.inner.Launch(now)
	a.observeBatch(now, starts, nil)
	return starts
}

// LaunchAndPreempt implements sim.Preemptor. When the wrapped scheduler
// does not preempt, it degenerates to a plain Launch with no suspensions —
// exactly what the engine would have done unwrapped.
func (a *Auditor) LaunchAndPreempt(now int64) (starts, suspends []*job.Job) {
	if a.preempt != nil {
		starts, suspends = a.preempt.LaunchAndPreempt(now)
	} else {
		starts = a.inner.Launch(now)
	}
	a.observeBatch(now, starts, suspends)
	return starts, suspends
}

// observeBatch audits one launch/suspend batch in engine application
// order: suspensions free processors that the same instant's starts use.
func (a *Auditor) observeBatch(now int64, starts, suspends []*job.Job) {
	for _, j := range suspends {
		st := a.jobs[j.ID]
		if st == nil || !st.running {
			a.violate(now, RuleSuspendNotRunning, j, "suspended while not running")
			continue
		}
		st.consumed += now - st.lastStart
		st.running = false
		st.suspended = true
		a.inUse -= j.Width
		delete(a.active, j.ID)
		a.queued[j.ID] = st
	}
	seen := make(map[int]bool, len(starts))
	for _, j := range starts {
		if seen[j.ID] {
			a.violate(now, RuleDuplicateInBatch, j, "started twice in one batch")
			continue
		}
		seen[j.ID] = true
		st := a.jobs[j.ID]
		switch {
		case st == nil || !st.arrived:
			a.violate(now, RuleLaunchUnknown, j, "started but never arrived")
			continue
		case st.done:
			a.violate(now, RuleRelaunchCompleted, j, "started again after completing")
			continue
		case st.running:
			a.violate(now, RuleDoubleLaunch, j, "started while already running")
			continue
		}
		if now < j.Arrival {
			a.violate(now, RuleLaunchBeforeArrival, j, "started at %d before arrival %d", now, j.Arrival)
		}
		if st.hasResv {
			// Conservative semantics: the arrival-time reservation is the
			// job's no-delay bound. Slack semantics: the fixed guarantee is.
			if a.guar == nil && now > st.initialResv {
				a.violate(now, RuleStartByReservation, j,
					"started at %d, reservation granted at arrival was %d", now, st.initialResv)
			}
		}
		if st.hasGuar && now > st.guarantee {
			a.violate(now, RuleSlackGuarantee, j,
				"started at %d past its guarantee %d", now, st.guarantee)
		}
		if a.opts.CheckHeadGuarantee && j.ID == a.headID && now > a.headBound {
			a.violate(now, RuleHeadNoDelay, j,
				"head started at %d past its shadow bound %d", now, a.headBound)
		}
		st.running = true
		st.suspended = false
		st.lastStart = now
		a.inUse += j.Width
		a.active[j.ID] = st
		delete(a.queued, j.ID)
		if a.inUse > a.procs {
			a.violate(now, RuleCapacity, j,
				"capacity exceeded: %d of %d processors in use", a.inUse, a.procs)
		}
	}
	a.afterEvent(now)
}

// NextWake delegates to the wrapped scheduler's Waker capability.
func (a *Auditor) NextWake(now int64) int64 {
	if a.waker == nil {
		return 0
	}
	return a.waker.NextWake(now)
}

// Cancel delegates job withdrawal (the grid extension). A successfully
// cancelled job leaves the auditor's queue mirror and is never expected to
// start.
func (a *Auditor) Cancel(now int64, j *job.Job) bool {
	c, ok := a.inner.(canceler)
	if !ok {
		return false
	}
	if !c.Cancel(now, j) {
		return false
	}
	if st := a.jobs[j.ID]; st != nil {
		st.cancelled = true
		delete(a.queued, j.ID)
	}
	a.afterEvent(now)
	return true
}

// QueuedJobs delegates.
func (a *Auditor) QueuedJobs() []*job.Job { return a.inner.QueuedJobs() }

// Reservation forwards the wrapped scheduler's reservation, if it keeps
// them, so code probing the scheduler structurally (state hashing, the
// serving snapshot) sees the same answer through the audit wrapper as it
// would against the bare scheduler.
func (a *Auditor) Reservation(id int) (int64, bool) {
	if a.resv == nil {
		return 0, false
	}
	return a.resv.Reservation(id)
}

// afterEvent runs the cross-cutting checks that hold between engine
// interactions: reservation/guarantee discipline and head tracking.
func (a *Auditor) afterEvent(now int64) {
	a.checkReservations(now)
	a.trackHead(now)
}

// checkReservations probes the scheduler's per-job guarantees. With only a
// Reservation hook (conservative family) reservations must be monotone
// non-increasing; with a Guarantee hook too (slack family) they may move
// either way but never past the fixed guarantee.
func (a *Auditor) checkReservations(now int64) {
	if a.resv == nil {
		return
	}
	for id, st := range a.queued {
		t, ok := a.resv.Reservation(id)
		if !ok {
			continue
		}
		if a.guar != nil && !st.hasGuar {
			if g, gok := a.guar.Guarantee(id); gok {
				st.hasGuar = true
				st.guarantee = g
			}
		}
		if !st.hasResv {
			st.hasResv = true
			st.initialResv = t
			st.lastResv = t
		} else {
			if a.guar == nil && t > st.lastResv {
				a.violate(now, RuleReservationMonotone, st.j,
					"reservation moved later: %d -> %d", st.lastResv, t)
			}
			st.lastResv = t
		}
		if st.hasGuar && t > st.guarantee {
			a.violate(now, RuleSlackGuarantee, st.j,
				"reservation %d past its guarantee %d", t, st.guarantee)
		}
	}
}

// trackHead maintains the EASY head-guarantee bound: whenever a job is the
// blocked head of the priority queue, its start deadline is the earliest
// shadow time observed while it has continuously held the head. Estimates
// are upper bounds on runtimes, so each recomputed shadow is itself a valid
// bound and the minimum only tightens the check.
func (a *Auditor) trackHead(now int64) {
	if !a.opts.CheckHeadGuarantee {
		return
	}
	var head *jobState
	for _, st := range a.queued {
		if head == nil || a.opts.Policy.Less(st.j, head.j, now) {
			head = st
		}
	}
	if head == nil {
		a.headID = 0
		return
	}
	bound := a.shadow(now, head.j)
	if head.j.ID != a.headID {
		a.headID = head.j.ID
		a.headBound = bound
	} else if bound < a.headBound {
		a.headBound = bound
	}
}

// shadow computes when, by current estimates, enough processors free up for
// j — the classic EASY shadow time. A job that already fits is due now.
func (a *Auditor) shadow(now int64, j *job.Job) int64 {
	avail := a.procs - a.inUse
	if avail >= j.Width {
		return now
	}
	runners := make([]*jobState, 0, len(a.active))
	for _, st := range a.active {
		runners = append(runners, st)
	}
	sort.Slice(runners, func(i, k int) bool {
		ei, ek := runners[i].estEnd(), runners[k].estEnd()
		if ei != ek {
			return ei < ek
		}
		return runners[i].j.ID < runners[k].j.ID
	})
	for _, st := range runners {
		avail += st.j.Width
		if avail >= j.Width {
			return st.estEnd()
		}
	}
	// Unreachable for valid inputs: draining every runner frees the whole
	// machine, and the engine rejects jobs wider than it.
	return now
}

// Run simulates jobs on a procs-wide machine under s wrapped in an Auditor
// and returns the placements together with the audit report. It is the
// one-call entry point tests and fuzzers use; err covers engine failures,
// rep.Err() covers invariant violations.
func Run(procs int, jobs []*job.Job, s sim.Scheduler, opts Options) (ps []sim.Placement, rep Report, err error) {
	a := New(procs, s, opts)
	ps, err = sim.Run(sim.Machine{Procs: procs}, jobs, a, nil)
	return ps, a.Report(), err
}
