package audit

import (
	"fmt"
	"sort"

	"repro/internal/job"
)

// RefConservative is an independent brute-force re-implementation of
// conservative backfilling used as a differential oracle: per-second
// free-processor arrays instead of the production step-function profile,
// and arrival-order placement instead of an event loop. It shares no code
// with internal/sched, so agreement on random workloads is strong evidence
// both are right.
//
// It models the regime where conservative semantics are unambiguous — FCFS
// priority and accurate estimates (runtime == estimate) — in which
// compression never changes anything and every job is simply reserved, in
// arrival order, at the earliest instant that fits given all earlier
// reservations.
//
// The per-second representation is O(horizon) in memory, so the oracle is
// for test- and fuzz-scale workloads, not production traces.
type RefConservative struct {
	horizon int64
	free    []int
}

// NewRefConservative returns an oracle for a procs-wide machine that can
// place work up to horizon seconds out. It panics if procs < 1 or
// horizon < 1.
func NewRefConservative(procs int, horizon int64) *RefConservative {
	if procs < 1 {
		panic(fmt.Sprintf("audit: NewRefConservative with %d processors", procs))
	}
	if horizon < 1 {
		panic(fmt.Sprintf("audit: NewRefConservative with horizon %d", horizon))
	}
	f := make([]int, horizon)
	for i := range f {
		f[i] = procs
	}
	return &RefConservative{horizon: horizon, free: f}
}

// Place reserves the earliest feasible window at or after arrival and
// returns its start. It panics when the horizon is too small — callers size
// it with enough headroom (see OracleStarts).
func (r *RefConservative) Place(arrival, dur int64, width int) int64 {
search:
	for s := arrival; s+dur <= r.horizon; s++ {
		for t := s; t < s+dur; t++ {
			if r.free[t] < width {
				continue search
			}
		}
		for t := s; t < s+dur; t++ {
			r.free[t] -= width
		}
		return s
	}
	panic("audit: oracle horizon too small")
}

// OracleStarts computes, per job ID, the start time conservative
// backfilling under FCFS with exact estimates must produce. Jobs are placed
// in (arrival, ID) order, matching the simulator's deterministic queue
// ordering. The horizon is sized so placement can never fail: even fully
// serialised work fits.
func OracleStarts(procs int, jobs []*job.Job) map[int]int64 {
	ordered := append([]*job.Job(nil), jobs...)
	sort.SliceStable(ordered, func(i, k int) bool {
		if ordered[i].Arrival != ordered[k].Arrival {
			return ordered[i].Arrival < ordered[k].Arrival
		}
		return ordered[i].ID < ordered[k].ID
	})
	horizon := int64(1)
	for _, j := range ordered {
		if j.Arrival > horizon {
			horizon = j.Arrival
		}
	}
	for _, j := range ordered {
		horizon += j.Estimate
	}
	oracle := NewRefConservative(procs, horizon+1)
	starts := make(map[int]int64, len(ordered))
	for _, j := range ordered {
		starts[j.ID] = oracle.Place(j.Arrival, j.Estimate, j.Width)
	}
	return starts
}
