package audit

import (
	"fmt"
	"sort"

	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// DiffOptions configure a differential run.
type DiffOptions struct {
	// Schedulers are sched.MakerFor kind strings; empty means sched.Kinds().
	Schedulers []string
	// Policies are priority policy names; empty means {"FCFS"}.
	Policies []string
	// SkipDeterminism disables the run-twice fingerprint check.
	SkipDeterminism bool
	// MaxRecorded caps violations recorded per cell (0: auditor default).
	MaxRecorded int
}

// CellResult is one scheduler × policy cell of a differential run.
type CellResult struct {
	// Kind and PolicyName identify the cell; Label is the scheduler's own
	// Name for reports.
	Kind       string
	PolicyName string
	Label      string
	// Starts maps job ID to first start time.
	Starts map[int]int64
	// Fingerprint is the schedule fingerprint (metrics.Fingerprint).
	Fingerprint uint64
	// Utilization is delivered work / (procs × makespan).
	Utilization float64
	// Violations are the cell's audit findings (empty on a clean run).
	Violations []Violation
	// RunErr records an engine failure (deadlock, double launch), if any.
	RunErr string
}

// DiffReport is the outcome of one differential run.
type DiffReport struct {
	Procs int
	Jobs  int
	// Exact reports whether every job's estimate equals its runtime, the
	// regime in which the strongest relational invariants hold.
	Exact bool
	// Cells holds every simulated cell in (scheduler, policy) axis order.
	Cells []CellResult
	// Failures lists every relational-invariant breach and per-cell audit
	// or engine failure, rendered for humans.
	Failures []string
}

// Err summarises the report as an error, or nil when everything agreed.
func (r *DiffReport) Err() error {
	if len(r.Failures) == 0 {
		return nil
	}
	return fmt.Errorf("audit: differential run found %d failures; first: %s",
		len(r.Failures), r.Failures[0])
}

// cellKey addresses a cell by axes.
type cellKey struct{ kind, pol string }

// Differential runs one workload through every scheduler × policy cell,
// each under an Auditor, and cross-checks relational invariants between the
// cells and against the brute-force oracle:
//
//   - every cell is violation-free and deterministic (same fingerprint when
//     re-run);
//   - with exact estimates, conservative(FCFS) and slack-0(FCFS) start
//     every job exactly when the independent RefConservative oracle says;
//   - with exact estimates, conservative backfilling is policy-invariant
//     (the paper's §4.1 observation) and identical to its no-compression
//     ablation (no early completions means nothing to compress);
//   - depth-1 lookahead is schedule-identical to EASY, and slack factor 0
//     is schedule-identical to conservative, under any estimates;
//   - every cell places every job exactly once, and no cell exceeds the
//     perfect-packing utilization bound of 1.
//
// Deliberately absent: "the no-backfill baseline's utilization is a lower
// bound for backfilling schedulers". Differential testing refuted it — EASY
// guarantees only the head of the queue, so a backfill may delay deeper
// queue jobs and stretch the makespan past the baseline's, even under FCFS
// with exact estimates. See DESIGN.md for the counterexample discussion.
//
// The returned error covers setup problems (unknown kind or policy);
// everything observed during simulation lands in the report.
func Differential(procs int, jobs []*job.Job, opt DiffOptions) (*DiffReport, error) {
	if procs < 1 {
		return nil, fmt.Errorf("audit: differential run with %d processors", procs)
	}
	kinds := opt.Schedulers
	if len(kinds) == 0 {
		kinds = sched.Kinds()
	}
	polNames := opt.Policies
	if len(polNames) == 0 {
		polNames = []string{"FCFS"}
	}
	policies := make([]sched.Policy, len(polNames))
	for i, name := range polNames {
		p, err := sched.PolicyByName(name)
		if err != nil {
			return nil, fmt.Errorf("audit: %w", err)
		}
		policies[i] = p
	}

	rep := &DiffReport{Procs: procs, Jobs: len(jobs), Exact: allExact(jobs)}
	cells := make(map[cellKey]*CellResult, len(kinds)*len(policies))
	for _, kind := range kinds {
		for i, pol := range policies {
			mk, err := sched.MakerFor(kind, pol)
			if err != nil {
				return nil, fmt.Errorf("audit: %w", err)
			}
			cell := runCell(procs, jobs, kind, polNames[i], mk, pol, opt)
			if cell.RunErr != "" {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s/%s: engine: %s", kind, polNames[i], cell.RunErr))
			}
			for _, v := range cell.Violations {
				rep.Failures = append(rep.Failures,
					fmt.Sprintf("%s/%s: %s", kind, polNames[i], v))
			}
			if !opt.SkipDeterminism && cell.RunErr == "" {
				again := runCell(procs, jobs, kind, polNames[i], mk, pol, opt)
				if again.Fingerprint != cell.Fingerprint {
					rep.Failures = append(rep.Failures,
						fmt.Sprintf("%s/%s: nondeterministic: fingerprint %016x then %016x",
							kind, polNames[i], cell.Fingerprint, again.Fingerprint))
				}
			}
			cells[cellKey{kind, polNames[i]}] = cell
			rep.Cells = append(rep.Cells, *cell)
		}
	}

	rep.crossCheck(jobs, kinds, polNames, cells)
	return rep, nil
}

// runCell simulates one audited cell.
func runCell(procs int, jobs []*job.Job, kind, polName string, mk sched.Maker, pol sched.Policy, opt DiffOptions) *CellResult {
	opts := OptionsForKind(kind, pol)
	opts.MaxRecorded = opt.MaxRecorded
	s := mk(procs)
	a := New(procs, s, opts)
	cell := &CellResult{Kind: kind, PolicyName: polName, Label: s.Name()}
	ps, err := sim.Run(sim.Machine{Procs: procs}, jobs, a, nil)
	cell.Violations = a.Violations()
	if err != nil {
		cell.RunErr = err.Error()
		return cell
	}
	cell.Starts = make(map[int]int64, len(ps))
	var work float64
	first, last := int64(-1), int64(0)
	for _, p := range ps {
		cell.Starts[p.Job.ID] = p.Start
		work += float64(p.Job.Runtime) * float64(p.Job.Width)
		if first < 0 || p.Start < first {
			first = p.Start
		}
		if p.End > last {
			last = p.End
		}
	}
	if last > first && first >= 0 {
		cell.Utilization = work / (float64(procs) * float64(last-first))
	}
	cell.Fingerprint = metrics.Fingerprint(ps)
	return cell
}

// crossCheck evaluates the relational invariants between finished cells.
func (r *DiffReport) crossCheck(jobs []*job.Job, kinds, polNames []string, cells map[cellKey]*CellResult) {
	get := func(kind, pol string) *CellResult {
		c := cells[cellKey{kind, pol}]
		if c == nil || c.RunErr != "" {
			return nil
		}
		return c
	}

	// Oracle agreement: conservative semantics are unambiguous under FCFS
	// with exact estimates, and slack 0 must degenerate to them.
	if r.Exact {
		var oracle map[int]int64
		for _, kind := range []string{"conservative", "conservative-nc", "slack:0"} {
			c := get(kind, "FCFS")
			if c == nil {
				continue
			}
			if oracle == nil {
				oracle = OracleStarts(r.Procs, jobs)
			}
			r.compareStarts(fmt.Sprintf("%s/FCFS vs brute-force oracle", kind), c.Starts, oracle)
		}

		// §4.1: with exact estimates conservative backfilling is identical
		// under every priority policy, and compression never fires, so the
		// no-compression ablation matches too.
		var ref *CellResult
		for _, pol := range polNames {
			for _, kind := range []string{"conservative", "conservative-nc"} {
				c := get(kind, pol)
				if c == nil {
					continue
				}
				if ref == nil {
					ref = c
					continue
				}
				if c.Fingerprint != ref.Fingerprint {
					r.Failures = append(r.Failures, fmt.Sprintf(
						"§4.1 equivalence: %s/%s schedule differs from %s/%s under exact estimates",
						c.Kind, c.PolicyName, ref.Kind, ref.PolicyName))
				}
			}
		}
	}

	// Schedule identities that hold under any estimates: depth-1 ≡ EASY
	// and slack-0 ≡ conservative (two formulations of the same policy).
	for _, pol := range polNames {
		r.compareFingerprints(get("depth:1", pol), get("easy", pol), pol)
		r.compareFingerprints(get("slack:0", pol), get("conservative", pol), pol)
	}

	// Per-cell absolutes that hold for every scheduler under any estimates:
	// each cell must place the whole workload, and delivered work can never
	// exceed procs × makespan (utilization ≤ 1). A cross-cell utilization
	// comparison against the no-backfill baseline is deliberately not made:
	// differential runs produced counterexamples to the intuitive
	// "backfilling never hurts utilization" claim even for EASY under FCFS
	// with exact estimates, because only the head job is protected from
	// backfill-induced delay.
	const tol = 1e-9
	for _, kind := range kinds {
		for _, pol := range polNames {
			c := get(kind, pol)
			if c == nil {
				continue
			}
			if len(c.Starts) != r.Jobs {
				r.Failures = append(r.Failures, fmt.Sprintf(
					"coverage: %s/%s placed %d of %d jobs",
					kind, pol, len(c.Starts), r.Jobs))
			}
			if c.Utilization > 1+tol {
				r.Failures = append(r.Failures, fmt.Sprintf(
					"packing bound: %s/%s utilization %.6f exceeds 1",
					kind, pol, c.Utilization))
			}
		}
	}
}

// compareStarts records a failure for every job whose start differs.
func (r *DiffReport) compareStarts(what string, got, want map[int]int64) {
	ids := make([]int, 0, len(want))
	for id := range want {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		g, ok := got[id]
		if !ok {
			r.Failures = append(r.Failures, fmt.Sprintf("%s: job %d never placed", what, id))
			continue
		}
		if g != want[id] {
			r.Failures = append(r.Failures,
				fmt.Sprintf("%s: job %d starts at %d, oracle says %d", what, id, g, want[id]))
		}
	}
}

// compareFingerprints records a failure when two supposedly identical
// formulations produced different schedules.
func (r *DiffReport) compareFingerprints(a, b *CellResult, pol string) {
	if a == nil || b == nil {
		return
	}
	if a.Fingerprint != b.Fingerprint {
		r.Failures = append(r.Failures, fmt.Sprintf(
			"schedule identity: %s and %s differ under %s (%016x vs %016x)",
			a.Label, b.Label, pol, a.Fingerprint, b.Fingerprint))
	}
}

// allExact reports whether every job's estimate equals its actual runtime.
func allExact(jobs []*job.Job) bool {
	for _, j := range jobs {
		if j.Estimate != j.Runtime {
			return false
		}
	}
	return true
}
