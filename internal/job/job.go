// Package job defines the parallel-job record used throughout the simulator
// and the category machinery that is the heart of the paper's methodology:
// classifying jobs by length (Short/Long), width (Narrow/Wide), and by the
// accuracy of the user's runtime estimate (well/poorly estimated).
package job

import (
	"fmt"
	"time"
)

// Job is a rigid parallel job as recorded in a workload trace. Scheduling
// views a job as a rectangle in the processors×time plane: Width processors
// for Estimate seconds (the scheduler plans with the user estimate; the job
// actually releases its processors after Runtime seconds).
//
// All times are in integer seconds. Arrival is an absolute trace timestamp;
// Runtime and Estimate are durations.
type Job struct {
	// ID is the job's trace-unique identifier (positive).
	ID int
	// Arrival is the submission time in seconds from the trace epoch.
	Arrival int64
	// Runtime is the job's actual execution time in seconds (>= 0).
	Runtime int64
	// Estimate is the user-supplied runtime estimate in seconds. Schedulers
	// plan and kill with the estimate, so Estimate >= Runtime and
	// Estimate >= 1 must hold for a valid job (Validate enforces this).
	Estimate int64
	// Width is the number of processors requested (>= 1).
	Width int
	// User identifies the submitting user (0 if unknown). Not used by the
	// schedulers, but preserved through trace transforms.
	User int
}

// Validate reports the first invariant violated by j, or nil. The simulator
// refuses invalid jobs rather than silently mis-scheduling them.
func (j *Job) Validate() error {
	switch {
	case j == nil:
		return fmt.Errorf("job: nil job")
	case j.ID <= 0:
		return fmt.Errorf("job %d: non-positive ID", j.ID)
	case j.Arrival < 0:
		return fmt.Errorf("job %d: negative arrival %d", j.ID, j.Arrival)
	case j.Runtime < 0:
		return fmt.Errorf("job %d: negative runtime %d", j.ID, j.Runtime)
	case j.Estimate < 1:
		return fmt.Errorf("job %d: estimate %d < 1", j.ID, j.Estimate)
	case j.Estimate < j.Runtime:
		return fmt.Errorf("job %d: estimate %d < runtime %d (jobs are killed at the wall limit, so runtime must not exceed the estimate)", j.ID, j.Estimate, j.Runtime)
	case j.Width < 1:
		return fmt.Errorf("job %d: width %d < 1", j.ID, j.Width)
	}
	return nil
}

// OverestimationFactor returns Estimate/Runtime, the paper's R value for a
// single job. Jobs with zero runtime are treated as running for one second
// so the factor stays finite.
func (j *Job) OverestimationFactor() float64 {
	rt := j.Runtime
	if rt < 1 {
		rt = 1
	}
	return float64(j.Estimate) / float64(rt)
}

// String renders the job compactly for logs and test failures.
func (j *Job) String() string {
	return fmt.Sprintf("job %d (arr=%d w=%d rt=%s est=%s)",
		j.ID, j.Arrival, j.Width,
		time.Duration(j.Runtime)*time.Second,
		time.Duration(j.Estimate)*time.Second)
}

// Clone returns an independent copy of j.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// CloneAll deep-copies a slice of jobs.
func CloneAll(jobs []*Job) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}
