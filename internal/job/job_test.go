package job

import (
	"strings"
	"testing"
	"testing/quick"
)

func validJob() *Job {
	return &Job{ID: 1, Arrival: 0, Runtime: 100, Estimate: 200, Width: 4}
}

func TestValidateOK(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

func TestValidateZeroRuntime(t *testing.T) {
	j := validJob()
	j.Runtime = 0
	j.Estimate = 1
	if err := j.Validate(); err != nil {
		t.Fatalf("zero-runtime job with estimate 1 should be valid: %v", err)
	}
}

func TestValidateFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
		frag   string
	}{
		{"zero id", func(j *Job) { j.ID = 0 }, "non-positive ID"},
		{"negative id", func(j *Job) { j.ID = -3 }, "non-positive ID"},
		{"negative arrival", func(j *Job) { j.Arrival = -1 }, "negative arrival"},
		{"negative runtime", func(j *Job) { j.Runtime = -1 }, "negative runtime"},
		{"zero estimate", func(j *Job) { j.Estimate = 0 }, "estimate 0 < 1"},
		{"estimate below runtime", func(j *Job) { j.Estimate = 50 }, "estimate 50 < runtime"},
		{"zero width", func(j *Job) { j.Width = 0 }, "width 0 < 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := validJob()
			tc.mutate(j)
			err := j.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q", tc.frag)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not contain %q", err, tc.frag)
			}
		})
	}
}

func TestValidateNil(t *testing.T) {
	var j *Job
	if err := j.Validate(); err == nil {
		t.Fatal("nil job should be invalid")
	}
}

func TestOverestimationFactor(t *testing.T) {
	cases := []struct {
		runtime, estimate int64
		want              float64
	}{
		{100, 100, 1},
		{100, 200, 2},
		{100, 450, 4.5},
		{0, 10, 10}, // zero runtime treated as 1s
	}
	for _, tc := range cases {
		j := &Job{ID: 1, Runtime: tc.runtime, Estimate: tc.estimate, Width: 1}
		if got := j.OverestimationFactor(); got != tc.want {
			t.Errorf("rt=%d est=%d: factor = %v, want %v", tc.runtime, tc.estimate, got, tc.want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	j := validJob()
	c := j.Clone()
	c.Runtime = 999
	c.ID = 77
	if j.Runtime != 100 || j.ID != 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestCloneAll(t *testing.T) {
	in := []*Job{validJob(), {ID: 2, Runtime: 5, Estimate: 10, Width: 2}}
	out := CloneAll(in)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	out[0].Width = 64
	if in[0].Width != 4 {
		t.Fatal("CloneAll shares state")
	}
}

func TestStringMentionsFields(t *testing.T) {
	s := validJob().String()
	for _, frag := range []string{"job 1", "w=4"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestJobValidatePropertyRandom(t *testing.T) {
	// Any job built with all-positive fields and estimate >= runtime must
	// validate; flipping any single invariant must fail.
	f := func(id uint16, arr uint32, rt uint32, pad uint16, w uint8) bool {
		j := &Job{
			ID:       int(id) + 1,
			Arrival:  int64(arr),
			Runtime:  int64(rt),
			Estimate: int64(rt) + int64(pad) + 1,
			Width:    int(w) + 1,
		}
		return j.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
