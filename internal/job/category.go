package job

import "fmt"

// Category is one of the four job classes from Table 1 of the paper,
// crossing runtime (Short/Long) with processor request (Narrow/Wide).
type Category int

// The four categories, in the presentation order the paper uses.
const (
	ShortNarrow   Category = iota // runtime <= length threshold, width <= width threshold
	ShortWide                     // short but wide
	LongNarrow                    // long but narrow
	LongWide                      // long and wide
	NumCategories                 // count sentinel, not a category
)

// Short reports whether the category's runtime class is Short.
func (c Category) Short() bool { return c == ShortNarrow || c == ShortWide }

// Narrow reports whether the category's width class is Narrow.
func (c Category) Narrow() bool { return c == ShortNarrow || c == LongNarrow }

// String returns the paper's abbreviation: SN, SW, LN or LW.
func (c Category) String() string {
	switch c {
	case ShortNarrow:
		return "SN"
	case ShortWide:
		return "SW"
	case LongNarrow:
		return "LN"
	case LongWide:
		return "LW"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists the four categories in presentation order.
func Categories() []Category {
	return []Category{ShortNarrow, ShortWide, LongNarrow, LongWide}
}

// Thresholds holds the category boundaries from Table 1. A job is Short when
// Runtime <= MaxShortRuntime and Narrow when Width <= MaxNarrowWidth.
type Thresholds struct {
	MaxShortRuntime int64 // seconds; paper value: 3600 (1 hour)
	MaxNarrowWidth  int   // processors; paper value: 8
}

// PaperThresholds returns the Table 1 boundaries: one hour and eight
// processors.
func PaperThresholds() Thresholds {
	return Thresholds{MaxShortRuntime: 3600, MaxNarrowWidth: 8}
}

// Classify assigns j to its category. Classification uses the actual
// runtime, as in the paper ("two categories based on their run time").
func (t Thresholds) Classify(j *Job) Category {
	short := j.Runtime <= t.MaxShortRuntime
	narrow := j.Width <= t.MaxNarrowWidth
	switch {
	case short && narrow:
		return ShortNarrow
	case short:
		return ShortWide
	case narrow:
		return LongNarrow
	default:
		return LongWide
	}
}

// Mix is the fraction of jobs in each category. Fractions are in [0,1] and
// sum to 1 for a non-empty job set.
type Mix [NumCategories]float64

// CategoryMix computes the category distribution of jobs (Tables 2 and 3 of
// the paper). An empty slice yields the zero Mix.
func CategoryMix(jobs []*Job, t Thresholds) Mix {
	var m Mix
	if len(jobs) == 0 {
		return m
	}
	for _, j := range jobs {
		m[t.Classify(j)]++
	}
	for i := range m {
		m[i] /= float64(len(jobs))
	}
	return m
}

// EstimateQuality is the paper's §5.2 split of jobs by how accurate the
// user's runtime estimate was.
type EstimateQuality int

const (
	// WellEstimated jobs have Estimate <= 2×Runtime.
	WellEstimated EstimateQuality = iota
	// PoorlyEstimated jobs have Estimate > 2×Runtime.
	PoorlyEstimated
	NumEstimateQualities // count sentinel
)

// String returns a human-readable name.
func (q EstimateQuality) String() string {
	switch q {
	case WellEstimated:
		return "well-estimated"
	case PoorlyEstimated:
		return "poorly-estimated"
	default:
		return fmt.Sprintf("EstimateQuality(%d)", int(q))
	}
}

// WellEstimatedFactor is the paper's boundary: a job is well estimated when
// its estimate is at most this multiple of its actual runtime.
const WellEstimatedFactor = 2.0

// ClassifyEstimate splits j into well/poorly estimated per §5.2: "Jobs whose
// user estimated run time is less than or equal to twice their actual run
// time are considered to be well estimated."
func ClassifyEstimate(j *Job) EstimateQuality {
	rt := j.Runtime
	if rt < 1 {
		rt = 1 // zero-runtime jobs: any estimate >= 1 counts against 1s
	}
	if float64(j.Estimate) <= WellEstimatedFactor*float64(rt) {
		return WellEstimated
	}
	return PoorlyEstimated
}
