package job

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperThresholds(t *testing.T) {
	th := PaperThresholds()
	if th.MaxShortRuntime != 3600 {
		t.Errorf("MaxShortRuntime = %d, want 3600", th.MaxShortRuntime)
	}
	if th.MaxNarrowWidth != 8 {
		t.Errorf("MaxNarrowWidth = %d, want 8", th.MaxNarrowWidth)
	}
}

func TestClassifyTable1(t *testing.T) {
	th := PaperThresholds()
	cases := []struct {
		runtime int64
		width   int
		want    Category
	}{
		{3600, 8, ShortNarrow}, // both exactly at threshold => short+narrow
		{3600, 9, ShortWide},   // one over width threshold
		{3601, 8, LongNarrow},  // one over runtime threshold
		{3601, 9, LongWide},    // both over
		{1, 1, ShortNarrow},    // tiny
		{86400, 128, LongWide}, // big
		{100, 128, ShortWide},  // short wide
		{86400, 1, LongNarrow}, // long narrow
	}
	for _, tc := range cases {
		j := &Job{ID: 1, Runtime: tc.runtime, Estimate: tc.runtime + 1, Width: tc.width}
		if got := th.Classify(j); got != tc.want {
			t.Errorf("rt=%d w=%d: got %v, want %v", tc.runtime, tc.width, got, tc.want)
		}
	}
}

func TestCategoryPredicates(t *testing.T) {
	cases := []struct {
		c      Category
		short  bool
		narrow bool
		str    string
	}{
		{ShortNarrow, true, true, "SN"},
		{ShortWide, true, false, "SW"},
		{LongNarrow, false, true, "LN"},
		{LongWide, false, false, "LW"},
	}
	for _, tc := range cases {
		if tc.c.Short() != tc.short {
			t.Errorf("%v.Short() = %v", tc.c, tc.c.Short())
		}
		if tc.c.Narrow() != tc.narrow {
			t.Errorf("%v.Narrow() = %v", tc.c, tc.c.Narrow())
		}
		if tc.c.String() != tc.str {
			t.Errorf("%v.String() = %q, want %q", tc.c, tc.c.String(), tc.str)
		}
	}
	if Category(99).String() == "" {
		t.Error("out-of-range category should still stringify")
	}
}

func TestCategoriesOrder(t *testing.T) {
	cs := Categories()
	want := []Category{ShortNarrow, ShortWide, LongNarrow, LongWide}
	if len(cs) != len(want) {
		t.Fatalf("len = %d", len(cs))
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("Categories()[%d] = %v, want %v", i, cs[i], want[i])
		}
	}
}

func TestCategoryMixSumsToOne(t *testing.T) {
	th := PaperThresholds()
	jobs := []*Job{
		{ID: 1, Runtime: 10, Estimate: 10, Width: 1},
		{ID: 2, Runtime: 10, Estimate: 10, Width: 100},
		{ID: 3, Runtime: 7200, Estimate: 7200, Width: 1},
		{ID: 4, Runtime: 7200, Estimate: 7200, Width: 100},
		{ID: 5, Runtime: 5, Estimate: 5, Width: 2},
	}
	m := CategoryMix(jobs, th)
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mix sums to %v", sum)
	}
	if m[ShortNarrow] != 0.4 {
		t.Errorf("SN = %v, want 0.4", m[ShortNarrow])
	}
	for _, c := range []Category{ShortWide, LongNarrow, LongWide} {
		if m[c] != 0.2 {
			t.Errorf("%v = %v, want 0.2", c, m[c])
		}
	}
}

func TestCategoryMixEmpty(t *testing.T) {
	m := CategoryMix(nil, PaperThresholds())
	for _, v := range m {
		if v != 0 {
			t.Fatal("empty mix not zero")
		}
	}
}

func TestCategoryMixProperty(t *testing.T) {
	th := PaperThresholds()
	f := func(rts []uint16, ws []uint8) bool {
		n := len(rts)
		if len(ws) < n {
			n = len(ws)
		}
		jobs := make([]*Job, 0, n)
		for i := 0; i < n; i++ {
			jobs = append(jobs, &Job{
				ID: i + 1, Runtime: int64(rts[i]), Estimate: int64(rts[i]) + 1,
				Width: int(ws[i]) + 1,
			})
		}
		m := CategoryMix(jobs, th)
		sum := 0.0
		for _, v := range m {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if len(jobs) == 0 {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyEstimate(t *testing.T) {
	cases := []struct {
		runtime, estimate int64
		want              EstimateQuality
	}{
		{100, 100, WellEstimated},
		{100, 200, WellEstimated}, // exactly 2x is well estimated
		{100, 201, PoorlyEstimated},
		{100, 1000, PoorlyEstimated},
		{0, 2, WellEstimated},   // zero runtime counts as 1s: 2 <= 2*1
		{0, 3, PoorlyEstimated}, // 3 > 2*1
	}
	for _, tc := range cases {
		j := &Job{ID: 1, Runtime: tc.runtime, Estimate: tc.estimate, Width: 1}
		if got := ClassifyEstimate(j); got != tc.want {
			t.Errorf("rt=%d est=%d: got %v, want %v", tc.runtime, tc.estimate, got, tc.want)
		}
	}
}

func TestEstimateQualityString(t *testing.T) {
	if WellEstimated.String() != "well-estimated" {
		t.Error("WellEstimated name")
	}
	if PoorlyEstimated.String() != "poorly-estimated" {
		t.Error("PoorlyEstimated name")
	}
	if EstimateQuality(9).String() == "" {
		t.Error("out-of-range quality should stringify")
	}
}

func TestClassifyConsistentWithPredicates(t *testing.T) {
	th := PaperThresholds()
	f := func(rt uint16, w uint8) bool {
		j := &Job{ID: 1, Runtime: int64(rt), Estimate: int64(rt) + 1, Width: int(w) + 1}
		c := th.Classify(j)
		wantShort := j.Runtime <= th.MaxShortRuntime
		wantNarrow := j.Width <= th.MaxNarrowWidth
		return c.Short() == wantShort && c.Narrow() == wantNarrow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
