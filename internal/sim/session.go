package sim

import (
	"fmt"
	"sort"

	"repro/internal/job"
)

// JobState is a Session's view of where one submitted job is in its
// lifecycle.
type JobState int

const (
	// StatePending: submitted to the session but its arrival instant has
	// not been reached yet (only possible when jobs are submitted with a
	// future arrival, as SWF replay does).
	StatePending JobState = iota
	// StateQueued: arrived and waiting in the scheduler's queue.
	StateQueued
	// StateRunning: dispatched and holding processors.
	StateRunning
	// StateSuspended: preempted; waiting to be resumed.
	StateSuspended
	// StateDone: completed.
	StateDone
	// StateCancelled: withdrawn before it ever started.
	StateCancelled
)

// String names the state the way the service API reports it.
func (s JobState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateDone:
		return "done"
	case StateCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// JobInfo is a point-in-time snapshot of one job's progress, as reported by
// Session.Info.
type JobInfo struct {
	Job   *job.Job
	State JobState
	// Start is the first dispatch time; valid once the job has run.
	Start int64
	// End is the completion time; valid once State == StateDone.
	End int64
	// EstEnd is when the current dispatch ends by the user estimate; valid
	// while State == StateRunning. Forecasters treat it as the instant the
	// job's processors are guaranteed back.
	EstEnd int64
}

// sessionJob is the session's bookkeeping for one submitted job.
type sessionJob struct {
	j         *job.Job
	arrived   bool
	cancelled bool
}

// canceler mirrors sched.Canceler: the optional scheduler capability of
// withdrawing a queued job. Probed structurally so sim keeps importing only
// job.
type canceler interface {
	Cancel(now int64, j *job.Job) bool
}

// Session is the incremental form of the event engine: the same loop Run
// drives to completion, exposed one instant at a time so long-running
// services can interleave job submission, cancellation, forecasting, and
// time advancement. A Session is not safe for concurrent use; the serving
// layer owns one goroutine per session.
//
// The lifecycle is Open → any mix of Submit/Cancel/Step/AdvanceTo → Drain
// (or Finish). Submitting every job up front and calling Drain is exactly
// Run — Run is implemented that way — so batch and incremental execution
// produce identical placements for identical submission orders.
type Session struct {
	m   Machine
	s   Scheduler
	obs *Observer

	q      *EventQueue
	jobs   map[int]*sessionJob
	states map[int]*runState
	// active holds the IDs of currently running jobs, so Running snapshots
	// cost O(in-flight) instead of scanning every job ever dispatched.
	active map[int]struct{}

	placements []Placement
	inFlight   int
	submitted  int
	cancelled  int
	completed  int

	waker     Waker
	preemptor Preemptor
	timers    map[int64]bool

	now     int64  // last processed instant
	stepped bool   // has any instant been processed
	version uint64 // bumped on every externally visible state change
	err     error  // sticky engine failure; the session is dead once set

	// touched accumulates the IDs of jobs whose externally visible state
	// (lifecycle state, start, end, estimated end) changed since the last
	// DrainTouched. Nil until TrackTouched enables it; serving layers use
	// the set to patch immutable snapshots instead of rebuilding them from
	// every job the session has ever seen.
	touched map[int]struct{}
}

// Open starts a session on machine m under scheduler s. obs may be nil.
func Open(m Machine, s Scheduler, obs *Observer) (*Session, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("sim: open session with nil scheduler")
	}
	ss := &Session{
		m:      m,
		s:      s,
		obs:    obs,
		q:      NewEventQueue(),
		jobs:   make(map[int]*sessionJob),
		states: make(map[int]*runState),
		active: make(map[int]struct{}),
		timers: make(map[int64]bool),
	}
	ss.waker, _ = s.(Waker)
	ss.preemptor, _ = s.(Preemptor)
	return ss, nil
}

// Now returns the last processed instant (0 before any event fires).
func (ss *Session) Now() int64 { return ss.now }

// TrackTouched turns on touched-job tracking: from this call on, the
// session records the ID of every job whose observable state changes, and
// DrainTouched hands the accumulated set over. The serving layer enables
// it once at startup; tracking is off by default so batch runs pay
// nothing.
func (ss *Session) TrackTouched() {
	if ss.touched == nil {
		ss.touched = make(map[int]struct{})
	}
}

// DrainTouched returns the IDs touched since the previous drain and resets
// the set. The order is unspecified. Returns nil when tracking is off or
// nothing changed.
func (ss *Session) DrainTouched() []int {
	if len(ss.touched) == 0 {
		return nil
	}
	out := make([]int, 0, len(ss.touched))
	for id := range ss.touched {
		out = append(out, id)
		delete(ss.touched, id)
	}
	return out
}

// touch records an observable state change for job id (no-op when tracking
// is off).
func (ss *Session) touch(id int) {
	if ss.touched != nil {
		ss.touched[id] = struct{}{}
	}
}

// Version is a cheap, monotonically increasing state-change counter: it
// bumps on every successful Submit and Cancel and on every processed event
// instant. A serving layer can compare versions to know whether anything a
// client could observe has changed since it last rendered the session, and
// skip the rebuild when nothing has. Only the session's owning goroutine
// may call it (like every other method).
func (ss *Session) Version() uint64 { return ss.version }

// Err returns the sticky engine failure, or nil while the session is
// healthy.
func (ss *Session) Err() error { return ss.err }

// Submit enqueues one job for arrival at j.Arrival. The arrival must not
// predate the session's current instant: the scheduler already made its
// decisions for that past, and rewriting history would break the engine's
// determinism guarantee. Job IDs must be unique across the whole session.
func (ss *Session) Submit(j *job.Job) error {
	if ss.err != nil {
		return ss.err
	}
	if err := j.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if j.Width > ss.m.Procs {
		return fmt.Errorf("sim: %v requests %d processors but the machine has %d", j, j.Width, ss.m.Procs)
	}
	if ss.jobs[j.ID] != nil {
		return fmt.Errorf("sim: duplicate job ID %d in workload", j.ID)
	}
	if ss.stepped && j.Arrival < ss.now {
		return fmt.Errorf("sim: %v submitted at session time %d, after its arrival", j, ss.now)
	}
	ss.jobs[j.ID] = &sessionJob{j: j}
	ss.submitted++
	ss.version++
	ss.touch(j.ID)
	ss.q.Push(j.Arrival, Arrival, j)
	return nil
}

// Cancel withdraws a job that has not started. Pending jobs (arrival not
// yet delivered) are always cancellable; queued jobs additionally require
// the scheduler to implement the Cancel capability (all repo schedulers
// do). It returns false for unknown, running, suspended, or finished jobs —
// cancelling those is a client error, not an engine one.
func (ss *Session) Cancel(id int) bool {
	if ss.err != nil {
		return false
	}
	sj := ss.jobs[id]
	if sj == nil || sj.cancelled {
		return false
	}
	if st := ss.states[id]; st != nil {
		return false // dispatched at least once: running, suspended or done
	}
	if !sj.arrived {
		// The arrival event is still in the queue; mark it so delivery is
		// skipped when the instant comes.
		sj.cancelled = true
		ss.cancelled++
		ss.version++
		ss.touch(id)
		return true
	}
	c, ok := ss.s.(canceler)
	if !ok || !c.Cancel(ss.now, sj.j) {
		return false
	}
	sj.cancelled = true
	ss.cancelled++
	ss.version++
	ss.touch(id)
	// Canceler contract: freed capacity (a released reservation compresses
	// the queue) must be offered back to the scheduler at the same instant.
	if err := ss.launch(ss.now); err != nil {
		ss.err = err
	}
	return true
}

// NextEventTime reports the instant of the earliest pending event, if any.
func (ss *Session) NextEventTime() (int64, bool) {
	e, ok := ss.q.Peek()
	if !ok {
		return 0, false
	}
	return e.Time, true
}

// Pending reports how many submitted jobs have not yet completed or been
// cancelled.
func (ss *Session) Pending() int {
	return ss.submitted - ss.completed - ss.cancelled
}

// dispatch starts (or resumes) j at now, scheduling its completion.
func (ss *Session) dispatch(now int64, j *job.Job) error {
	st := ss.states[j.ID]
	if st == nil {
		st = &runState{firstStart: -1}
		ss.states[j.ID] = st
	}
	switch {
	case st.done:
		return fmt.Errorf("sim: scheduler %s relaunched completed %v", ss.s.Name(), j)
	case st.running:
		return fmt.Errorf("sim: scheduler %s launched %v twice", ss.s.Name(), j)
	}
	if st.firstStart < 0 {
		st.firstStart = now
	}
	st.lastStart = now
	st.running = true
	st.suspended = false
	remaining := j.Runtime - st.consumed
	if remaining < 0 {
		return fmt.Errorf("sim: %v resumed with negative remaining runtime", j)
	}
	ss.inFlight++
	ss.active[j.ID] = struct{}{}
	ss.touch(j.ID)
	ss.q.PushEpoch(now+remaining, Completion, j, st.epoch)
	if ss.obs != nil && ss.obs.OnStart != nil {
		ss.obs.OnStart(now, j)
	}
	return nil
}

// suspend preempts running job j at now, banking its consumed runtime.
func (ss *Session) suspend(now int64, j *job.Job) error {
	st := ss.states[j.ID]
	if st == nil || !st.running {
		return fmt.Errorf("sim: scheduler %s suspended %v which is not running", ss.s.Name(), j)
	}
	st.consumed += now - st.lastStart
	if st.consumed >= j.Runtime {
		return fmt.Errorf("sim: %v suspended at %d after its work finished", j, now)
	}
	st.running = false
	st.suspended = true
	st.epoch++ // cancels the pending completion
	ss.inFlight--
	delete(ss.active, j.ID)
	ss.touch(j.ID)
	if ss.obs != nil && ss.obs.OnSuspend != nil {
		ss.obs.OnSuspend(now, j)
	}
	return nil
}

// launch runs one scheduling pass at now: ask the scheduler what to start
// (and, for preemptors, what to suspend), apply it, and arm the next wake-up
// timer.
func (ss *Session) launch(now int64) error {
	var starts, suspends []*job.Job
	if ss.preemptor != nil {
		starts, suspends = ss.preemptor.LaunchAndPreempt(now)
	} else {
		starts = ss.s.Launch(now)
	}
	for _, j := range suspends {
		if err := ss.suspend(now, j); err != nil {
			return err
		}
	}
	for _, j := range starts {
		if err := ss.dispatch(now, j); err != nil {
			return err
		}
	}
	if ss.waker != nil {
		if t := ss.waker.NextWake(now); t > now && !ss.timers[t] {
			ss.timers[t] = true
			ss.q.Push(t, Timer, nil)
		}
	}
	return nil
}

// Step processes the next event instant: it delivers every event scheduled
// there, then gives the scheduler one launch pass. It reports false when no
// events remain. A returned error is sticky — the scheduler violated the
// engine contract and the session cannot continue.
func (ss *Session) Step() (bool, error) {
	if ss.err != nil {
		return false, ss.err
	}
	head, ok := ss.q.Peek()
	if !ok {
		return false, nil
	}
	now := head.Time
	ss.now = now
	ss.stepped = true
	ss.version++
	// Deliver every event at this instant before asking for launches:
	// completions free processors and arrivals extend the queue, and the
	// scheduler should see the complete picture.
	for {
		head, ok := ss.q.Peek()
		if !ok || head.Time != now {
			break
		}
		e, _ := ss.q.Pop()
		switch e.Kind {
		case Completion:
			st := ss.states[e.Job.ID]
			if st == nil || e.epoch != st.epoch || !st.running {
				continue // cancelled by a preemption
			}
			st.running = false
			st.done = true
			st.end = now
			ss.inFlight--
			delete(ss.active, e.Job.ID)
			ss.completed++
			ss.placements = append(ss.placements, Placement{Job: e.Job, Start: st.firstStart, End: now})
			ss.touch(e.Job.ID)
			ss.s.Complete(now, e.Job)
			if ss.obs != nil && ss.obs.OnComplete != nil {
				ss.obs.OnComplete(now, e.Job)
			}
		case Arrival:
			if sj := ss.jobs[e.Job.ID]; sj != nil {
				if sj.cancelled {
					continue // withdrawn before arrival; never shown to the scheduler
				}
				sj.arrived = true
				ss.touch(e.Job.ID)
			}
			ss.s.Arrive(now, e.Job)
			if ss.obs != nil && ss.obs.OnArrive != nil {
				ss.obs.OnArrive(now, e.Job)
			}
		case Timer:
			delete(ss.timers, now) // wake-up: launch below does the work
		}
	}
	if err := ss.launch(now); err != nil {
		ss.err = err
		return false, err
	}
	return true, nil
}

// AdvanceTo processes every event instant up to and including t. Events
// beyond t stay pending; the session's clock never runs ahead of the
// latest processed event.
func (ss *Session) AdvanceTo(t int64) error {
	for {
		next, ok := ss.NextEventTime()
		if !ok || next > t {
			return ss.err
		}
		if _, err := ss.Step(); err != nil {
			return err
		}
	}
}

// Finish verifies the end-of-run invariants (no deadlocked jobs, no
// lost completions) and returns every placement ordered by (first start,
// job ID). It is valid only once no events remain.
func (ss *Session) Finish() ([]Placement, error) {
	if ss.err != nil {
		return nil, ss.err
	}
	if ss.q.Len() > 0 {
		return nil, fmt.Errorf("sim: Finish with %d events still pending", ss.q.Len())
	}
	if leftover := ss.s.QueuedJobs(); len(leftover) > 0 {
		return nil, fmt.Errorf("sim: scheduler %s deadlocked with %d jobs never started (first: %v)", ss.s.Name(), len(leftover), leftover[0])
	}
	if ss.inFlight != 0 {
		return nil, fmt.Errorf("sim: %d jobs still in flight after event queue drained", ss.inFlight)
	}
	if want := ss.submitted - ss.cancelled; len(ss.placements) != want {
		return nil, fmt.Errorf("sim: %d placements for %d jobs", len(ss.placements), want)
	}
	return ss.Placements(), nil
}

// Drain runs the session to completion and returns the final placements:
// the batch tail of the incremental interface.
func (ss *Session) Drain() ([]Placement, error) {
	for {
		ok, err := ss.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return ss.Finish()
}

// Placements returns a sorted copy of the placements recorded so far,
// ordered by (first start time, job ID). During a run it is a prefix of the
// final schedule (completed jobs only).
func (ss *Session) Placements() []Placement {
	ps := append([]Placement(nil), ss.placements...)
	sort.Slice(ps, func(i, k int) bool {
		if ps[i].Start != ps[k].Start {
			return ps[i].Start < ps[k].Start
		}
		return ps[i].Job.ID < ps[k].Job.ID
	})
	return ps
}

// Info reports the current state of one submitted job.
func (ss *Session) Info(id int) (JobInfo, bool) {
	sj := ss.jobs[id]
	if sj == nil {
		return JobInfo{}, false
	}
	info := JobInfo{Job: sj.j, Start: -1, End: -1, EstEnd: -1}
	st := ss.states[id]
	switch {
	case sj.cancelled:
		info.State = StateCancelled
	case st == nil:
		if sj.arrived {
			info.State = StateQueued
		} else {
			info.State = StatePending
		}
	case st.done:
		info.State = StateDone
		info.Start = st.firstStart
		info.End = st.end
	case st.running:
		info.State = StateRunning
		info.Start = st.firstStart
		info.EstEnd = st.lastStart + (sj.j.Estimate - st.consumed)
	case st.suspended:
		info.State = StateSuspended
		info.Start = st.firstStart
	default:
		// Dispatched state exists but neither running nor done: unreachable
		// for a healthy engine; report queued as the conservative answer.
		info.State = StateQueued
	}
	return info, true
}

// Infos returns a point-in-time snapshot of every submitted job, in no
// particular order. Serving layers use it to build immutable state
// snapshots in one pass instead of querying job by job.
func (ss *Session) Infos() []JobInfo {
	out := make([]JobInfo, 0, len(ss.jobs))
	for id := range ss.jobs {
		if info, ok := ss.Info(id); ok {
			out = append(out, info)
		}
	}
	return out
}

// Queued returns the scheduler's waiting jobs (including suspended ones for
// preemptive schedulers), in the scheduler's own order.
func (ss *Session) Queued() []*job.Job { return ss.s.QueuedJobs() }

// Running returns a snapshot of every running job, ordered by job ID — the
// machine half of the state a start-time forecast needs.
func (ss *Session) Running() []JobInfo {
	out := make([]JobInfo, 0, ss.inFlight)
	for id := range ss.active {
		if info, ok := ss.Info(id); ok {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Job.ID < out[k].Job.ID })
	return out
}
