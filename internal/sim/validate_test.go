package sim

import (
	"strings"
	"testing"

	"repro/internal/job"
)

// TestRunRejectsDuplicateJobIDs: the engine keys run state by job ID and
// orders the final placements by (Start, ID), which is a total order only
// for unique IDs. A workload carrying a duplicate must be rejected up
// front, not silently mis-simulated.
func TestRunRejectsDuplicateJobIDs(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 10, Estimate: 10, Width: 1},
		{ID: 2, Arrival: 0, Runtime: 10, Estimate: 10, Width: 1},
		{ID: 1, Arrival: 5, Runtime: 20, Estimate: 20, Width: 1},
	}
	_, err := Run(Machine{Procs: 4}, jobs, newGreedyFIFO(4), nil)
	if err == nil {
		t.Fatal("duplicate job ID accepted")
	}
	if !strings.Contains(err.Error(), "duplicate job ID 1") {
		t.Fatalf("error %q does not name the duplicate ID", err)
	}
}
