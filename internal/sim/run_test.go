package sim

import (
	"strings"
	"testing"

	"repro/internal/job"
)

// greedyFIFO is a minimal correct scheduler for engine tests: strict FIFO,
// start the head whenever it fits, no backfilling.
type greedyFIFO struct {
	procs int
	free  int
	queue []*job.Job
}

func newGreedyFIFO(procs int) *greedyFIFO {
	return &greedyFIFO{procs: procs, free: procs}
}

func (g *greedyFIFO) Name() string { return "greedyFIFO" }

func (g *greedyFIFO) Arrive(now int64, j *job.Job) { g.queue = append(g.queue, j) }

func (g *greedyFIFO) Complete(now int64, j *job.Job) { g.free += j.Width }

func (g *greedyFIFO) Launch(now int64) []*job.Job {
	var out []*job.Job
	for len(g.queue) > 0 && g.queue[0].Width <= g.free {
		j := g.queue[0]
		g.queue = g.queue[1:]
		g.free -= j.Width
		out = append(out, j)
	}
	return out
}

func (g *greedyFIFO) QueuedJobs() []*job.Job { return g.queue }

// brokenScheduler never launches anything, to exercise deadlock detection.
type brokenScheduler struct{ queue []*job.Job }

func (b *brokenScheduler) Name() string                 { return "broken" }
func (b *brokenScheduler) Arrive(_ int64, j *job.Job)   { b.queue = append(b.queue, j) }
func (b *brokenScheduler) Complete(_ int64, _ *job.Job) {}
func (b *brokenScheduler) Launch(_ int64) []*job.Job    { return nil }
func (b *brokenScheduler) QueuedJobs() []*job.Job       { return b.queue }

// doubleScheduler launches the same job twice.
type doubleScheduler struct {
	j    *job.Job
	done bool
}

func (d *doubleScheduler) Name() string                 { return "double" }
func (d *doubleScheduler) Arrive(_ int64, j *job.Job)   { d.j = j }
func (d *doubleScheduler) Complete(_ int64, _ *job.Job) {}
func (d *doubleScheduler) Launch(_ int64) []*job.Job {
	if d.j == nil || d.done {
		return nil
	}
	d.done = true
	return []*job.Job{d.j, d.j}
}
func (d *doubleScheduler) QueuedJobs() []*job.Job { return nil }

func mkJob(id int, arr, rt int64, w int) *job.Job {
	return &job.Job{ID: id, Arrival: arr, Runtime: rt, Estimate: rt + 1, Width: w}
}

func TestRunSingleJob(t *testing.T) {
	j := mkJob(1, 5, 100, 4)
	ps, err := Run(Machine{Procs: 8}, []*job.Job{j}, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("placements = %d", len(ps))
	}
	if ps[0].Start != 5 || ps[0].End != 105 {
		t.Fatalf("placement = %+v", ps[0])
	}
}

func TestRunSerializesWhenFull(t *testing.T) {
	// Two 8-wide jobs on an 8-proc machine must run back to back.
	jobs := []*job.Job{mkJob(1, 0, 50, 8), mkJob(2, 0, 30, 8)}
	ps, err := Run(Machine{Procs: 8}, jobs, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Start != 0 || ps[0].End != 50 {
		t.Fatalf("first placement %+v", ps[0])
	}
	if ps[1].Start != 50 || ps[1].End != 80 {
		t.Fatalf("second placement %+v", ps[1])
	}
}

func TestRunParallelWhenFits(t *testing.T) {
	jobs := []*job.Job{mkJob(1, 0, 50, 4), mkJob(2, 0, 30, 4)}
	ps, err := Run(Machine{Procs: 8}, jobs, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Start != 0 || ps[1].Start != 0 {
		t.Fatalf("both should start at 0: %+v %+v", ps[0], ps[1])
	}
}

func TestRunArrivalSeesSimultaneousCompletion(t *testing.T) {
	// Job 2 arrives exactly when job 1 completes; completions are delivered
	// first, so job 2 starts immediately.
	jobs := []*job.Job{mkJob(1, 0, 100, 8), mkJob(2, 100, 10, 8)}
	ps, err := Run(Machine{Procs: 8}, jobs, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps[1].Start != 100 {
		t.Fatalf("job 2 start = %d, want 100", ps[1].Start)
	}
}

func TestRunZeroRuntimeJob(t *testing.T) {
	// Zero-runtime jobs complete at their start instant; the engine must
	// process the same-time completion and let a blocked successor run.
	jobs := []*job.Job{mkJob(1, 0, 0, 8), mkJob(2, 0, 10, 8)}
	ps, err := Run(Machine{Procs: 8}, jobs, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Start != 0 || ps[0].End != 0 {
		t.Fatalf("zero-runtime placement %+v", ps[0])
	}
	if ps[1].Start != 0 {
		t.Fatalf("successor start = %d, want 0 (after same-instant completion)", ps[1].Start)
	}
}

func TestRunRejectsInvalidMachine(t *testing.T) {
	if _, err := Run(Machine{Procs: 0}, nil, newGreedyFIFO(1), nil); err == nil {
		t.Fatal("want error for zero-proc machine")
	}
}

func TestRunRejectsInvalidJob(t *testing.T) {
	bad := &job.Job{ID: 1, Runtime: 10, Estimate: 5, Width: 1} // estimate < runtime
	if _, err := Run(Machine{Procs: 4}, []*job.Job{bad}, newGreedyFIFO(4), nil); err == nil {
		t.Fatal("want error for invalid job")
	}
}

func TestRunRejectsTooWideJob(t *testing.T) {
	wide := mkJob(1, 0, 10, 16)
	_, err := Run(Machine{Procs: 8}, []*job.Job{wide}, newGreedyFIFO(8), nil)
	if err == nil || !strings.Contains(err.Error(), "16 processors") {
		t.Fatalf("want too-wide error, got %v", err)
	}
}

func TestRunDetectsDeadlock(t *testing.T) {
	jobs := []*job.Job{mkJob(1, 0, 10, 1)}
	_, err := Run(Machine{Procs: 4}, jobs, &brokenScheduler{}, nil)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestRunDetectsDoubleLaunch(t *testing.T) {
	jobs := []*job.Job{mkJob(1, 0, 10, 1)}
	_, err := Run(Machine{Procs: 4}, jobs, &doubleScheduler{}, nil)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want double-launch error, got %v", err)
	}
}

func TestRunObserverHooks(t *testing.T) {
	var starts, completes int
	obs := &Observer{
		OnStart:    func(now int64, j *job.Job) { starts++ },
		OnComplete: func(now int64, j *job.Job) { completes++ },
	}
	jobs := []*job.Job{mkJob(1, 0, 10, 1), mkJob(2, 1, 10, 1)}
	if _, err := Run(Machine{Procs: 4}, jobs, newGreedyFIFO(4), obs); err != nil {
		t.Fatal(err)
	}
	if starts != 2 || completes != 2 {
		t.Fatalf("observer saw %d starts, %d completes", starts, completes)
	}
}

func TestRunPlacementsSorted(t *testing.T) {
	jobs := []*job.Job{
		mkJob(3, 20, 10, 1), mkJob(1, 0, 10, 1), mkJob(2, 10, 10, 1),
	}
	ps, err := Run(Machine{Procs: 1}, jobs, newGreedyFIFO(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Start < ps[i-1].Start {
			t.Fatal("placements not sorted by start")
		}
	}
}

func TestRunEmptyWorkload(t *testing.T) {
	ps, err := Run(Machine{Procs: 4}, nil, newGreedyFIFO(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 0 {
		t.Fatal("placements for empty workload")
	}
}

func TestMachineValidate(t *testing.T) {
	if (Machine{Procs: 1}).Validate() != nil {
		t.Fatal("1-proc machine should be valid")
	}
	if (Machine{Procs: -1}).Validate() == nil {
		t.Fatal("negative machine should be invalid")
	}
}
