package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	j := &job.Job{ID: 1}
	q.Push(10, Arrival, j)
	q.Push(5, Arrival, j)
	q.Push(5, Completion, j)
	q.Push(20, Completion, j)

	var got []struct {
		t int64
		k EventKind
	}
	for q.Len() > 0 {
		e, _ := q.Pop()
		got = append(got, struct {
			t int64
			k EventKind
		}{e.Time, e.Kind})
	}
	want := []struct {
		t int64
		k EventKind
	}{
		{5, Completion}, // completions before arrivals at the same instant
		{5, Arrival},
		{10, Arrival},
		{20, Completion},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEventQueueFIFOAmongTies(t *testing.T) {
	q := NewEventQueue()
	for i := 1; i <= 10; i++ {
		q.Push(7, Arrival, &job.Job{ID: i})
	}
	for i := 1; i <= 10; i++ {
		e, _ := q.Pop()
		if e.Job.ID != i {
			t.Fatalf("tie order broken: popped %d, want %d", e.Job.ID, i)
		}
	}
}

func TestEventQueueEmpty(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reports an event")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue reports an event")
	}
	if q.Len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
}

func TestEventQueuePeekDoesNotRemove(t *testing.T) {
	q := NewEventQueue()
	q.Push(3, Arrival, &job.Job{ID: 1})
	if e, ok := q.Peek(); !ok || e.Time != 3 || q.Len() != 1 {
		t.Fatal("peek broken")
	}
	if e, ok := q.Pop(); !ok || e.Time != 3 || q.Len() != 0 {
		t.Fatal("pop after peek broken")
	}
}

func TestEventQueueSortedProperty(t *testing.T) {
	f := func(times []int64) bool {
		q := NewEventQueue()
		for i, tt := range times {
			if tt < 0 {
				tt = -tt
			}
			q.Push(tt, Arrival, &job.Job{ID: i + 1})
		}
		var popped []int64
		for q.Len() > 0 {
			e, _ := q.Pop()
			popped = append(popped, e.Time)
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindString(t *testing.T) {
	if Completion.String() != "completion" || Arrival.String() != "arrival" {
		t.Fatal("kind names wrong")
	}
	if EventKind(5).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

// TestEventQueueZeroAllocSteadyState pins the reason the heap stores Event
// values instead of *Event: once the backing array is warm, a push/pop
// cycle allocates nothing. The warm-up pass grows the slice; the measured
// passes reuse it.
func TestEventQueueZeroAllocSteadyState(t *testing.T) {
	const n = 256
	q := NewEventQueue()
	j := &job.Job{ID: 1}
	fill := func() {
		for i := 0; i < n; i++ {
			q.Push(int64((i*131)%977), EventKind(i%2), j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
	fill() // warm the backing array
	if got := testing.AllocsPerRun(10, fill); got != 0 {
		t.Fatalf("warm push/pop of %d events allocates %.1f times, want 0", n, got)
	}
}

// TestEventQueueInterleavedPops drives the heap with interleaved pushes and
// pops: every pop must return the minimum of the queue's current contents,
// and the final drain must come out fully sorted.
func TestEventQueueInterleavedPops(t *testing.T) {
	q := NewEventQueue()
	j := &job.Job{ID: 9}
	pending := make(map[int64]int) // multiset of times still enqueued
	push := []int64{50, 10, 30, 10, 70, 20, 30}
	for i, tt := range push {
		q.Push(tt, Arrival, j)
		pending[tt]++
		if i%2 == 1 {
			e, ok := q.Pop()
			if !ok {
				t.Fatal("pop failed with events pending")
			}
			for at := range pending {
				if at < e.Time {
					t.Fatalf("popped %d while %d still enqueued", e.Time, at)
				}
			}
			if pending[e.Time]--; pending[e.Time] == 0 {
				delete(pending, e.Time)
			}
		}
	}
	prev := int64(-1)
	for q.Len() > 0 {
		e, _ := q.Pop()
		if e.Time < prev {
			t.Fatalf("drain out of order: %d after %d", e.Time, prev)
		}
		prev = e.Time
	}
}
