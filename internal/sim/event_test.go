package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func TestEventQueueOrdering(t *testing.T) {
	q := NewEventQueue()
	j := &job.Job{ID: 1}
	q.Push(10, Arrival, j)
	q.Push(5, Arrival, j)
	q.Push(5, Completion, j)
	q.Push(20, Completion, j)

	var got []struct {
		t int64
		k EventKind
	}
	for q.Len() > 0 {
		e := q.Pop()
		got = append(got, struct {
			t int64
			k EventKind
		}{e.Time, e.Kind})
	}
	want := []struct {
		t int64
		k EventKind
	}{
		{5, Completion}, // completions before arrivals at the same instant
		{5, Arrival},
		{10, Arrival},
		{20, Completion},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEventQueueFIFOAmongTies(t *testing.T) {
	q := NewEventQueue()
	for i := 1; i <= 10; i++ {
		q.Push(7, Arrival, &job.Job{ID: i})
	}
	for i := 1; i <= 10; i++ {
		e := q.Pop()
		if e.Job.ID != i {
			t.Fatalf("tie order broken: popped %d, want %d", e.Job.ID, i)
		}
	}
}

func TestEventQueueEmpty(t *testing.T) {
	q := NewEventQueue()
	if q.Pop() != nil || q.Peek() != nil || q.Len() != 0 {
		t.Fatal("empty queue misbehaves")
	}
}

func TestEventQueuePeekDoesNotRemove(t *testing.T) {
	q := NewEventQueue()
	q.Push(3, Arrival, &job.Job{ID: 1})
	if q.Peek().Time != 3 || q.Len() != 1 {
		t.Fatal("peek broken")
	}
	if q.Pop().Time != 3 || q.Len() != 0 {
		t.Fatal("pop after peek broken")
	}
}

func TestEventQueueSortedProperty(t *testing.T) {
	f := func(times []int64) bool {
		q := NewEventQueue()
		for i, tt := range times {
			if tt < 0 {
				tt = -tt
			}
			q.Push(tt, Arrival, &job.Job{ID: i + 1})
		}
		var popped []int64
		for q.Len() > 0 {
			popped = append(popped, q.Pop().Time)
		}
		return sort.SliceIsSorted(popped, func(i, j int) bool { return popped[i] < popped[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventKindString(t *testing.T) {
	if Completion.String() != "completion" || Arrival.String() != "arrival" {
		t.Fatal("kind names wrong")
	}
	if EventKind(5).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}
