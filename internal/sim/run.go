package sim

import (
	"fmt"

	"repro/internal/job"
)

// Machine describes the simulated parallel machine: a flat pool of identical
// processors, as in the paper's CTC (430-node) and SDSC SP2 (128-node)
// systems. Space sharing only; no migration.
type Machine struct {
	Procs int
}

// Validate reports whether the machine description is usable.
func (m Machine) Validate() error {
	if m.Procs < 1 {
		return fmt.Errorf("sim: machine with %d processors", m.Procs)
	}
	return nil
}

// Scheduler is the contract between the event engine and a scheduling
// policy. The engine calls Arrive and Complete as events fire and then asks
// Launch which waiting jobs to start at the current instant. Schedulers see
// only user estimates for planning; the engine alone knows actual runtimes
// (it schedules the completion event).
type Scheduler interface {
	// Name identifies the scheduler in reports, e.g. "EASY(SJF)".
	Name() string
	// Arrive notifies the scheduler that j was submitted at time now.
	Arrive(now int64, j *job.Job)
	// Complete notifies the scheduler that a previously launched job
	// released its processors at time now (possibly earlier than its
	// estimate promised).
	Complete(now int64, j *job.Job)
	// Launch returns every waiting job the scheduler starts at time now, in
	// start order. The engine calls it once per distinct event time, after
	// delivering all events at that instant. Launching only consumes
	// processors, so one call per instant is sufficient.
	Launch(now int64) []*job.Job
	// QueuedJobs returns the jobs still waiting (used for deadlock
	// detection and auditing).
	QueuedJobs() []*job.Job
}

// Waker is an optional Scheduler extension for policies whose next start
// decision can fall at an instant with no arrival or completion event (a
// fixed reservation under a scheduler that does not compress, for
// instance). After each event batch the engine asks for the next wake-up
// time and schedules a Timer event for it.
type Waker interface {
	// NextWake returns the earliest future instant (> now) at which the
	// scheduler wants Launch called again, or 0 when it needs none.
	NextWake(now int64) int64
}

// Preemptor is an optional Scheduler extension for policies that suspend
// running jobs (the "selective preemption" family). When implemented, the
// engine calls LaunchAndPreempt instead of Launch: suspensions are
// processed first (each victim's consumed runtime is banked and its pending
// completion cancelled), then starts — a start of a previously suspended
// job is a resume and runs only its remaining work. A suspended job stays
// with the scheduler (it must reappear in QueuedJobs) until resumed.
type Preemptor interface {
	Scheduler
	// LaunchAndPreempt returns the jobs to start (or resume) and the
	// running jobs to suspend at now, in that application order:
	// suspensions free processors that the same instant's starts may use.
	LaunchAndPreempt(now int64) (starts, suspends []*job.Job)
}

// Placement records where one job ended up in the schedule. Start is the
// first dispatch, End the final completion; for jobs that were preempted
// and resumed, End − Start exceeds Runtime by the time spent suspended.
type Placement struct {
	Job   *job.Job
	Start int64
	End   int64
}

// Observer receives schedule notifications during a run; tests use it to
// audit invariants online. Any hook may be nil. OnArrive and OnComplete
// fire after the scheduler has processed the event; OnStart fires as each
// dispatch (including resumes) is recorded; OnSuspend fires as a running
// job is preempted.
type Observer struct {
	OnArrive   func(now int64, j *job.Job)
	OnStart    func(now int64, j *job.Job)
	OnSuspend  func(now int64, j *job.Job)
	OnComplete func(now int64, j *job.Job)
}

// runState tracks the engine's ground truth for one job.
type runState struct {
	firstStart int64 // -1 until first dispatched
	lastStart  int64
	end        int64 // completion time, valid once done
	consumed   int64 // runtime executed before the current dispatch
	epoch      int   // increments on suspend; stale completions are dropped
	running    bool
	suspended  bool
	done       bool
}

// Run simulates jobs on machine m under scheduler s and returns one
// Placement per job, ordered by (first start time, job ID). It returns an
// error if any job is invalid, wider than the machine, or if the scheduler
// never starts some job (a scheduler deadlock — always a bug).
//
// Run is the batch facade over Session: it opens a session, submits every
// job, and drains. Incremental submission through a Session yields the
// identical schedule as long as jobs are submitted in the same relative
// order before their arrival instants are reached.
func Run(m Machine, jobs []*job.Job, s Scheduler, obs *Observer) ([]Placement, error) {
	ss, err := Open(m, s, obs)
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		if err := ss.Submit(j); err != nil {
			return nil, err
		}
	}
	return ss.Drain()
}
