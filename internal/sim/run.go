package sim

import (
	"fmt"
	"sort"

	"repro/internal/job"
)

// Machine describes the simulated parallel machine: a flat pool of identical
// processors, as in the paper's CTC (430-node) and SDSC SP2 (128-node)
// systems. Space sharing only; no migration.
type Machine struct {
	Procs int
}

// Validate reports whether the machine description is usable.
func (m Machine) Validate() error {
	if m.Procs < 1 {
		return fmt.Errorf("sim: machine with %d processors", m.Procs)
	}
	return nil
}

// Scheduler is the contract between the event engine and a scheduling
// policy. The engine calls Arrive and Complete as events fire and then asks
// Launch which waiting jobs to start at the current instant. Schedulers see
// only user estimates for planning; the engine alone knows actual runtimes
// (it schedules the completion event).
type Scheduler interface {
	// Name identifies the scheduler in reports, e.g. "EASY(SJF)".
	Name() string
	// Arrive notifies the scheduler that j was submitted at time now.
	Arrive(now int64, j *job.Job)
	// Complete notifies the scheduler that a previously launched job
	// released its processors at time now (possibly earlier than its
	// estimate promised).
	Complete(now int64, j *job.Job)
	// Launch returns every waiting job the scheduler starts at time now, in
	// start order. The engine calls it once per distinct event time, after
	// delivering all events at that instant. Launching only consumes
	// processors, so one call per instant is sufficient.
	Launch(now int64) []*job.Job
	// QueuedJobs returns the jobs still waiting (used for deadlock
	// detection and auditing).
	QueuedJobs() []*job.Job
}

// Waker is an optional Scheduler extension for policies whose next start
// decision can fall at an instant with no arrival or completion event (a
// fixed reservation under a scheduler that does not compress, for
// instance). After each event batch the engine asks for the next wake-up
// time and schedules a Timer event for it.
type Waker interface {
	// NextWake returns the earliest future instant (> now) at which the
	// scheduler wants Launch called again, or 0 when it needs none.
	NextWake(now int64) int64
}

// Preemptor is an optional Scheduler extension for policies that suspend
// running jobs (the "selective preemption" family). When implemented, the
// engine calls LaunchAndPreempt instead of Launch: suspensions are
// processed first (each victim's consumed runtime is banked and its pending
// completion cancelled), then starts — a start of a previously suspended
// job is a resume and runs only its remaining work. A suspended job stays
// with the scheduler (it must reappear in QueuedJobs) until resumed.
type Preemptor interface {
	Scheduler
	// LaunchAndPreempt returns the jobs to start (or resume) and the
	// running jobs to suspend at now, in that application order:
	// suspensions free processors that the same instant's starts may use.
	LaunchAndPreempt(now int64) (starts, suspends []*job.Job)
}

// Placement records where one job ended up in the schedule. Start is the
// first dispatch, End the final completion; for jobs that were preempted
// and resumed, End − Start exceeds Runtime by the time spent suspended.
type Placement struct {
	Job   *job.Job
	Start int64
	End   int64
}

// Observer receives schedule notifications during a run; tests use it to
// audit invariants online. Any hook may be nil. OnArrive and OnComplete
// fire after the scheduler has processed the event; OnStart fires as each
// dispatch (including resumes) is recorded; OnSuspend fires as a running
// job is preempted.
type Observer struct {
	OnArrive   func(now int64, j *job.Job)
	OnStart    func(now int64, j *job.Job)
	OnSuspend  func(now int64, j *job.Job)
	OnComplete func(now int64, j *job.Job)
}

// runState tracks the engine's ground truth for one job.
type runState struct {
	firstStart int64 // -1 until first dispatched
	lastStart  int64
	consumed   int64 // runtime executed before the current dispatch
	epoch      int   // increments on suspend; stale completions are dropped
	running    bool
	suspended  bool
	done       bool
}

// Run simulates jobs on machine m under scheduler s and returns one
// Placement per job, ordered by (first start time, job ID). It returns an
// error if any job is invalid, wider than the machine, or if the scheduler
// never starts some job (a scheduler deadlock — always a bug).
func Run(m Machine, jobs []*job.Job, s Scheduler, obs *Observer) ([]Placement, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Job IDs must be unique: the engine keys run state by ID, and the final
	// (Start, ID) placement ordering below is a total order only then.
	seen := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		if j.Width > m.Procs {
			return nil, fmt.Errorf("sim: %v requests %d processors but the machine has %d", j, j.Width, m.Procs)
		}
		if seen[j.ID] {
			return nil, fmt.Errorf("sim: duplicate job ID %d in workload", j.ID)
		}
		seen[j.ID] = true
	}

	q := NewEventQueue()
	for _, j := range jobs {
		q.Push(j.Arrival, Arrival, j)
	}

	placements := make([]Placement, 0, len(jobs))
	states := make(map[int]*runState, len(jobs))
	inFlight := 0
	waker, _ := s.(Waker)
	preemptor, _ := s.(Preemptor)
	timers := make(map[int64]bool)

	dispatch := func(now int64, j *job.Job) error {
		st := states[j.ID]
		if st == nil {
			st = &runState{firstStart: -1}
			states[j.ID] = st
		}
		switch {
		case st.done:
			return fmt.Errorf("sim: scheduler %s relaunched completed %v", s.Name(), j)
		case st.running:
			return fmt.Errorf("sim: scheduler %s launched %v twice", s.Name(), j)
		}
		if st.firstStart < 0 {
			st.firstStart = now
		}
		st.lastStart = now
		st.running = true
		st.suspended = false
		remaining := j.Runtime - st.consumed
		if remaining < 0 {
			return fmt.Errorf("sim: %v resumed with negative remaining runtime", j)
		}
		inFlight++
		q.PushEpoch(now+remaining, Completion, j, st.epoch)
		if obs != nil && obs.OnStart != nil {
			obs.OnStart(now, j)
		}
		return nil
	}

	suspend := func(now int64, j *job.Job) error {
		st := states[j.ID]
		if st == nil || !st.running {
			return fmt.Errorf("sim: scheduler %s suspended %v which is not running", s.Name(), j)
		}
		st.consumed += now - st.lastStart
		if st.consumed >= j.Runtime {
			return fmt.Errorf("sim: %v suspended at %d after its work finished", j, now)
		}
		st.running = false
		st.suspended = true
		st.epoch++ // cancels the pending completion
		inFlight--
		if obs != nil && obs.OnSuspend != nil {
			obs.OnSuspend(now, j)
		}
		return nil
	}

	for q.Len() > 0 {
		now := q.Peek().Time
		// Deliver every event at this instant before asking for launches:
		// completions free processors and arrivals extend the queue, and the
		// scheduler should see the complete picture.
		for q.Len() > 0 && q.Peek().Time == now {
			e := q.Pop()
			switch e.Kind {
			case Completion:
				st := states[e.Job.ID]
				if st == nil || e.epoch != st.epoch || !st.running {
					continue // cancelled by a preemption
				}
				st.running = false
				st.done = true
				inFlight--
				placements = append(placements, Placement{Job: e.Job, Start: st.firstStart, End: now})
				s.Complete(now, e.Job)
				if obs != nil && obs.OnComplete != nil {
					obs.OnComplete(now, e.Job)
				}
			case Arrival:
				s.Arrive(now, e.Job)
				if obs != nil && obs.OnArrive != nil {
					obs.OnArrive(now, e.Job)
				}
			case Timer:
				delete(timers, now) // wake-up: Launch below does the work
			}
		}

		var starts, suspends []*job.Job
		if preemptor != nil {
			starts, suspends = preemptor.LaunchAndPreempt(now)
		} else {
			starts = s.Launch(now)
		}
		for _, j := range suspends {
			if err := suspend(now, j); err != nil {
				return nil, err
			}
		}
		for _, j := range starts {
			if err := dispatch(now, j); err != nil {
				return nil, err
			}
		}

		if waker != nil {
			if t := waker.NextWake(now); t > now && !timers[t] {
				timers[t] = true
				q.Push(t, Timer, nil)
			}
		}
	}

	if leftover := s.QueuedJobs(); len(leftover) > 0 {
		return nil, fmt.Errorf("sim: scheduler %s deadlocked with %d jobs never started (first: %v)", s.Name(), len(leftover), leftover[0])
	}
	if inFlight != 0 {
		return nil, fmt.Errorf("sim: %d jobs still in flight after event queue drained", inFlight)
	}
	if len(placements) != len(jobs) {
		return nil, fmt.Errorf("sim: %d placements for %d jobs", len(placements), len(jobs))
	}

	sort.Slice(placements, func(i, k int) bool {
		if placements[i].Start != placements[k].Start {
			return placements[i].Start < placements[k].Start
		}
		return placements[i].Job.ID < placements[k].Job.ID
	})
	return placements, nil
}
