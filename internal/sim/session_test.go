package sim

import (
	"strings"
	"testing"

	"repro/internal/job"
)

// cancellableFIFO extends greedyFIFO with the Cancel capability so session
// cancellation paths can be exercised without importing sched.
type cancellableFIFO struct{ *greedyFIFO }

func (c cancellableFIFO) Cancel(_ int64, j *job.Job) bool {
	for i, q := range c.queue {
		if q.ID == j.ID {
			c.greedyFIFO.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

func TestSessionBatchEqualsRun(t *testing.T) {
	jobs := []*job.Job{
		mkJob(1, 0, 50, 4), mkJob(2, 0, 30, 4), mkJob(3, 10, 40, 8),
		mkJob(4, 60, 5, 2), mkJob(5, 61, 25, 6),
	}
	want, err := Run(Machine{Procs: 8}, jobs, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}

	ss, err := Open(Machine{Procs: 8}, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := ss.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ss.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("placements: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("placement %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSessionIncrementalSubmission(t *testing.T) {
	// Submitting each job just before its arrival instant is reached must
	// reproduce the batch schedule exactly.
	jobs := []*job.Job{
		mkJob(1, 0, 50, 8), mkJob(2, 5, 30, 4), mkJob(3, 40, 40, 8),
		mkJob(4, 90, 5, 2), mkJob(5, 95, 25, 6),
	}
	want, err := Run(Machine{Procs: 8}, jobs, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}

	ss, err := Open(Machine{Procs: 8}, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		// Advance virtual time to the submission instant, then submit.
		if err := ss.AdvanceTo(j.Arrival - 1); err != nil {
			t.Fatal(err)
		}
		if err := ss.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ss.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("placement %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestSessionStepAndInfo(t *testing.T) {
	ss, err := Open(Machine{Procs: 8}, newGreedyFIFO(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := mkJob(1, 0, 100, 8)
	b := mkJob(2, 10, 20, 8)
	for _, j := range []*job.Job{a, b} {
		if err := ss.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if info, ok := ss.Info(2); !ok || info.State != StatePending {
		t.Fatalf("before any step: %+v ok=%v", info, ok)
	}

	// First instant: job 1 arrives and starts.
	if ok, err := ss.Step(); !ok || err != nil {
		t.Fatalf("step 1: ok=%v err=%v", ok, err)
	}
	if ss.Now() != 0 {
		t.Fatalf("now = %d, want 0", ss.Now())
	}
	info, _ := ss.Info(1)
	if info.State != StateRunning || info.Start != 0 || info.EstEnd != 101 {
		t.Fatalf("job 1 after start: %+v", info)
	}
	if n := len(ss.Running()); n != 1 {
		t.Fatalf("running = %d, want 1", n)
	}

	// Second instant: job 2 arrives, machine full, it queues.
	if ok, err := ss.Step(); !ok || err != nil {
		t.Fatalf("step 2: ok=%v err=%v", ok, err)
	}
	if info, _ := ss.Info(2); info.State != StateQueued {
		t.Fatalf("job 2 should queue: %+v", info)
	}
	if ss.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", ss.Pending())
	}

	ps, err := ss.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[1].Start != 100 || ps[1].End != 120 {
		t.Fatalf("final placements: %+v", ps)
	}
	if info, _ := ss.Info(2); info.State != StateDone || info.End != 120 {
		t.Fatalf("job 2 after drain: %+v", info)
	}
	if ss.Pending() != 0 {
		t.Fatalf("pending after drain = %d", ss.Pending())
	}
}

func TestSessionRejectsLateSubmission(t *testing.T) {
	ss, err := Open(Machine{Procs: 4}, newGreedyFIFO(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(mkJob(1, 50, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ss.AdvanceTo(50); err != nil {
		t.Fatal(err)
	}
	err = ss.Submit(mkJob(2, 20, 10, 1))
	if err == nil || !strings.Contains(err.Error(), "after its arrival") {
		t.Fatalf("want late-submission error, got %v", err)
	}
	// Same-instant submission is fine.
	if err := ss.Submit(mkJob(3, 50, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionSubmitValidation(t *testing.T) {
	ss, err := Open(Machine{Procs: 4}, newGreedyFIFO(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(&job.Job{ID: 1, Runtime: 10, Estimate: 5, Width: 1}); err == nil {
		t.Fatal("want error for invalid job")
	}
	if err := ss.Submit(mkJob(1, 0, 10, 8)); err == nil || !strings.Contains(err.Error(), "8 processors") {
		t.Fatalf("want too-wide error, got %v", err)
	}
	if err := ss.Submit(mkJob(1, 0, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(mkJob(1, 5, 10, 1)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestSessionCancelQueued(t *testing.T) {
	g := cancellableFIFO{newGreedyFIFO(8)}
	ss, err := Open(Machine{Procs: 8}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocker := mkJob(1, 0, 100, 8)
	victim := mkJob(2, 0, 50, 8)
	waiter := mkJob(3, 0, 10, 8)
	for _, j := range []*job.Job{blocker, victim, waiter} {
		if err := ss.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if ok, err := ss.Step(); !ok || err != nil {
		t.Fatalf("step: ok=%v err=%v", ok, err)
	}
	if !ss.Cancel(2) {
		t.Fatal("cancel of queued job failed")
	}
	if ss.Cancel(2) {
		t.Fatal("second cancel should fail")
	}
	if ss.Cancel(1) {
		t.Fatal("cancel of running job should fail")
	}
	if info, _ := ss.Info(2); info.State != StateCancelled {
		t.Fatalf("victim state: %+v", info)
	}
	ps, err := ss.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("placements = %d, want 2", len(ps))
	}
	// With the victim gone, the waiter starts right after the blocker.
	if ps[1].Job.ID != 3 || ps[1].Start != 100 {
		t.Fatalf("waiter placement: %+v", ps[1])
	}
}

func TestSessionCancelPending(t *testing.T) {
	ss, err := Open(Machine{Procs: 4}, newGreedyFIFO(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(mkJob(1, 0, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(mkJob(2, 100, 10, 1)); err != nil {
		t.Fatal(err)
	}
	// Job 2's arrival has not been reached; cancelling it must work even
	// without scheduler support (greedyFIFO has no Cancel).
	if !ss.Cancel(2) {
		t.Fatal("cancel of pending job failed")
	}
	if ss.Cancel(99) {
		t.Fatal("cancel of unknown job should fail")
	}
	ps, err := ss.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Job.ID != 1 {
		t.Fatalf("placements: %+v", ps)
	}
}

func TestSessionFinishWithPendingEvents(t *testing.T) {
	ss, err := Open(Machine{Procs: 4}, newGreedyFIFO(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(mkJob(1, 0, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Finish(); err == nil || !strings.Contains(err.Error(), "pending") {
		t.Fatalf("want pending-events error, got %v", err)
	}
}

func TestSessionStickyError(t *testing.T) {
	ss, err := Open(Machine{Procs: 4}, &doubleScheduler{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit(mkJob(1, 0, 10, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Step(); err == nil {
		t.Fatal("want double-launch error")
	}
	if ss.Err() == nil {
		t.Fatal("error should stick")
	}
	if err := ss.Submit(mkJob(2, 0, 10, 1)); err == nil {
		t.Fatal("submit after failure should fail")
	}
	if _, err := ss.Drain(); err == nil {
		t.Fatal("drain after failure should fail")
	}
}

func TestOpenRejectsBadInputs(t *testing.T) {
	if _, err := Open(Machine{Procs: 0}, newGreedyFIFO(1), nil); err == nil {
		t.Fatal("want error for zero-proc machine")
	}
	if _, err := Open(Machine{Procs: 1}, nil, nil); err == nil {
		t.Fatal("want error for nil scheduler")
	}
}
