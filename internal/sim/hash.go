package sim

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// reservist mirrors sched.Reservist: the optional scheduler capability of
// reporting the reservation it holds for a queued job. Probed structurally
// so sim keeps importing only job (the audit wrapper forwards it).
type reservist interface {
	Reservation(id int) (int64, bool)
}

// StateHash digests the session's externally meaningful state — the clock,
// every submitted job with its full lifecycle bookkeeping, the scheduler's
// queue order, and any reservations the scheduler holds — into one FNV-1a
// value. Two sessions with equal hashes are indistinguishable to every
// client-visible surface and, because the engine is deterministic, will
// evolve identically under identical future inputs.
//
// It is the equivalence oracle of the durability layer: a recovering daemon
// proves "replay landed exactly where the crashed process stood" by
// comparing hashes, and checkpoints embed the hash so a divergent replay
// fails loudly instead of resuming from silently wrong state. Incremental
// and batch execution of the same submission sequence pin the same hash
// (see TestStateHashIncrementalEqualsBatch). Only the session's owning
// goroutine may call it.
func (ss *Session) StateHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	i64(ss.now)
	u64(uint64(ss.submitted))
	u64(uint64(ss.cancelled))
	u64(uint64(ss.completed))

	ids := make([]int, 0, len(ss.jobs))
	for id := range ss.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		sj := ss.jobs[id]
		u64(uint64(sj.j.ID))
		i64(sj.j.Arrival)
		i64(sj.j.Runtime)
		i64(sj.j.Estimate)
		u64(uint64(sj.j.Width))
		u64(uint64(sj.j.User))
		b(sj.arrived)
		b(sj.cancelled)
		st := ss.states[id]
		if st == nil {
			u64(0)
			continue
		}
		u64(1)
		i64(st.firstStart)
		i64(st.lastStart)
		i64(st.end)
		i64(st.consumed)
		u64(uint64(st.epoch))
		b(st.running)
		b(st.suspended)
		b(st.done)
	}

	// Queue order is scheduler state a client can observe (it decides what
	// backfills next), so it is part of the digest — as are the
	// reservations conservative-family schedulers hold.
	rsv, _ := ss.s.(reservist)
	for i, j := range ss.s.QueuedJobs() {
		u64(uint64(i))
		u64(uint64(j.ID))
		if rsv != nil {
			if t, ok := rsv.Reservation(j.ID); ok {
				i64(t)
			}
		}
	}
	return h.Sum64()
}
