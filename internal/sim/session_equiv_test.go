package sim_test

// Session ≡ Run equivalence across the full scheduler catalog: replaying a
// workload incrementally (submit each job only when virtual time reaches
// it) must produce the exact placements of the offline batch run, with the
// audit wrapper enabled and silent. This is the acceptance gate for the
// incremental engine refactor — the online service is only trustworthy if
// stepping never changes a schedule.

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func equivWorkload(t *testing.T) ([]*job.Job, int) {
	t.Helper()
	m, err := workload.NewSDSC(0.9)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Generate(300, 11)
	if err != nil {
		t.Fatal(err)
	}
	return workload.ApplyEstimates(jobs, workload.Actual{}, 12), m.Procs
}

func TestSessionIncrementalEqualsBatchAllKinds(t *testing.T) {
	jobs, procs := equivWorkload(t)
	pol, err := sched.PolicyByName("FCFS")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			mk, err := sched.MakerFor(kind, pol)
			if err != nil {
				t.Fatal(err)
			}

			want, err := sim.Run(sim.Machine{Procs: procs}, jobs, mk(procs), nil)
			if err != nil {
				t.Fatal(err)
			}

			aud := audit.New(procs, mk(procs), audit.OptionsForKind(kind, pol))
			ss, err := sim.Open(sim.Machine{Procs: procs}, aud, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobs {
				if err := ss.AdvanceTo(j.Arrival - 1); err != nil {
					t.Fatal(err)
				}
				if err := ss.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			got, err := ss.Drain()
			if err != nil {
				t.Fatal(err)
			}
			if err := aud.Err(); err != nil {
				t.Fatalf("audit violations under incremental replay: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("placements: %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i].Job.ID != want[i].Job.ID || got[i].Start != want[i].Start || got[i].End != want[i].End {
					t.Fatalf("placement %d diverged: incremental %+v vs batch %+v", i, got[i], want[i])
				}
			}
		})
	}
}
