package sim_test

// StateHash is the durability layer's equivalence oracle: a recovering
// daemon replays the journal and compares hashes against the crashed
// process. These tests pin the two properties that make that comparison
// meaningful — path-independence (incremental and batch execution of the
// same submissions land on the same hash, for every scheduler kind, with
// and without the audit wrapper) and sensitivity (a divergent history
// lands on a different hash).

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestStateHashIncrementalEqualsBatch(t *testing.T) {
	jobs, procs := equivWorkload(t)
	pol, err := sched.PolicyByName("FCFS")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range sched.Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			mk, err := sched.MakerFor(kind, pol)
			if err != nil {
				t.Fatal(err)
			}

			// Batch: submit everything up front, then drain.
			batch, err := sim.Open(sim.Machine{Procs: procs}, mk(procs), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobs {
				if err := batch.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := batch.Drain(); err != nil {
				t.Fatal(err)
			}

			// Incremental: advance virtual time to each arrival before
			// submitting, behind the audit wrapper (which must be
			// hash-transparent now that it forwards reservations).
			aud := audit.New(procs, mk(procs), audit.OptionsForKind(kind, pol))
			inc, err := sim.Open(sim.Machine{Procs: procs}, aud, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range jobs {
				if err := inc.AdvanceTo(j.Arrival - 1); err != nil {
					t.Fatal(err)
				}
				if err := inc.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := inc.Drain(); err != nil {
				t.Fatal(err)
			}
			if err := aud.Err(); err != nil {
				t.Fatal(err)
			}

			if bh, ih := batch.StateHash(), inc.StateHash(); bh != ih {
				t.Fatalf("batch hash %#x != incremental hash %#x", bh, ih)
			}
		})
	}
}

// TestStateHashStableAcrossCalls pins that hashing is a pure read: two
// consecutive calls agree, and hashing does not disturb the session.
func TestStateHashStableAcrossCalls(t *testing.T) {
	jobs, procs := equivWorkload(t)
	pol, _ := sched.PolicyByName("FCFS")
	mk, err := sched.MakerFor("easy", pol)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sim.Open(sim.Machine{Procs: procs}, mk(procs), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs[:50] {
		if err := ss.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.AdvanceTo(jobs[20].Arrival); err != nil {
		t.Fatal(err)
	}
	h1 := ss.StateHash()
	if h2 := ss.StateHash(); h2 != h1 {
		t.Fatalf("hash changed between calls: %#x then %#x", h1, h2)
	}
	ver := ss.Version()
	ss.StateHash()
	if ss.Version() != ver {
		t.Fatal("StateHash mutated the session version")
	}
}

// TestStateHashSensitivity pins that histories a client can tell apart
// hash differently: an extra submission, a cancellation, and a different
// clock all perturb the digest.
func TestStateHashSensitivity(t *testing.T) {
	jobs, procs := equivWorkload(t)
	pol, _ := sched.PolicyByName("FCFS")
	mk, err := sched.MakerFor("conservative", pol)
	if err != nil {
		t.Fatal(err)
	}
	open := func() *sim.Session {
		ss, err := sim.Open(sim.Machine{Procs: procs}, mk(procs), nil)
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	feed := func(ss *sim.Session, n int) {
		for _, j := range jobs[:n] {
			if err := ss.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
	}

	base := open()
	feed(base, 40)
	if err := base.AdvanceTo(jobs[10].Arrival); err != nil {
		t.Fatal(err)
	}
	h0 := base.StateHash()

	extra := open()
	feed(extra, 41)
	if err := extra.AdvanceTo(jobs[10].Arrival); err != nil {
		t.Fatal(err)
	}
	if h := extra.StateHash(); h == h0 {
		t.Fatal("extra submission did not change the hash")
	}

	cancelled := open()
	feed(cancelled, 40)
	if err := cancelled.AdvanceTo(jobs[10].Arrival); err != nil {
		t.Fatal(err)
	}
	victim := pickQueued(t, cancelled)
	if !cancelled.Cancel(victim) {
		t.Fatalf("cancel of queued job %d refused", victim)
	}
	if h := cancelled.StateHash(); h == h0 {
		t.Fatal("cancellation did not change the hash")
	}

	later := open()
	feed(later, 40)
	if err := later.AdvanceTo(jobs[10].Arrival + 1); err != nil {
		t.Fatal(err)
	}
	if h := later.StateHash(); h == h0 {
		t.Fatal("advancing the clock did not change the hash")
	}
}

func pickQueued(t *testing.T, ss *sim.Session) int {
	t.Helper()
	q := ss.Queued()
	if len(q) == 0 {
		t.Skip("no queued job to cancel at this instant")
	}
	return q[len(q)-1].ID
}
