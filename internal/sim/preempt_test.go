package sim

import (
	"strings"
	"testing"

	"repro/internal/job"
)

// stubPreemptor drives the engine's suspend/resume mechanics directly: it
// runs jobs FIFO on a 1-slot machine but suspends the running job whenever
// a new arrival appears (round-robin-by-arrival, width 1 only).
type stubPreemptor struct {
	queue   []*job.Job
	running *job.Job
	bad     string // inject a protocol violation: "suspend-idle", "double-start", "suspend-done"
}

func (p *stubPreemptor) Name() string               { return "stubPreemptor" }
func (p *stubPreemptor) Arrive(_ int64, j *job.Job) { p.queue = append(p.queue, j) }
func (p *stubPreemptor) Complete(_ int64, j *job.Job) {
	if p.running != nil && p.running.ID == j.ID {
		p.running = nil
	}
}
func (p *stubPreemptor) Launch(now int64) []*job.Job {
	s, _ := p.LaunchAndPreempt(now)
	return s
}

func (p *stubPreemptor) LaunchAndPreempt(now int64) (starts, suspends []*job.Job) {
	switch p.bad {
	case "suspend-idle":
		if len(p.queue) > 0 {
			return nil, []*job.Job{p.queue[0]} // suspending a queued job: invalid
		}
	case "double-start":
		if p.running != nil {
			return []*job.Job{p.running}, nil // starting a running job: invalid
		}
	}
	if p.running != nil && len(p.queue) > 0 {
		// Preempt in favour of the longest-waiting queued job.
		suspends = append(suspends, p.running)
		p.queue = append(p.queue, p.running)
		p.running = nil
	}
	if p.running == nil && len(p.queue) > 0 {
		p.running = p.queue[0]
		p.queue = p.queue[1:]
		starts = append(starts, p.running)
	}
	return starts, suspends
}

func (p *stubPreemptor) QueuedJobs() []*job.Job { return p.queue }

// wakerFIFO holds every job until a fixed wake time, exercising the Timer
// event path directly: nothing else creates an event at that instant.
type wakerFIFO struct {
	wakeAt int64
	free   int
	queue  []*job.Job
}

func (w *wakerFIFO) Name() string                 { return "wakerFIFO" }
func (w *wakerFIFO) Arrive(_ int64, j *job.Job)   { w.queue = append(w.queue, j) }
func (w *wakerFIFO) Complete(_ int64, j *job.Job) { w.free += j.Width }
func (w *wakerFIFO) Launch(now int64) []*job.Job {
	if now < w.wakeAt {
		return nil
	}
	var out []*job.Job
	for len(w.queue) > 0 && w.queue[0].Width <= w.free {
		j := w.queue[0]
		w.queue = w.queue[1:]
		w.free -= j.Width
		out = append(out, j)
	}
	return out
}
func (w *wakerFIFO) QueuedJobs() []*job.Job { return w.queue }
func (w *wakerFIFO) NextWake(now int64) int64 {
	if now < w.wakeAt && len(w.queue) > 0 {
		return w.wakeAt
	}
	return 0
}

func TestEngineTimerWake(t *testing.T) {
	// One job arrives at 10; the scheduler refuses to start anything until
	// t=500. Without the Waker timer the run would deadlock (no events
	// after the arrival); with it, the job starts exactly at 500.
	jobs := []*job.Job{{ID: 1, Arrival: 10, Runtime: 50, Estimate: 50, Width: 1}}
	s := &wakerFIFO{wakeAt: 500, free: 4}
	ps, err := Run(Machine{Procs: 4}, jobs, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].Start != 500 {
		t.Fatalf("start = %d, want 500 (timer wake)", ps[0].Start)
	}
}

func TestEngineSuspendResume(t *testing.T) {
	// j1 runs [0, ...); j2 arrives at 10 and preempts it; j1 resumes when
	// j2 finishes. j1: runtime 100 total → runs [0,10) then [60,150).
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 100, Estimate: 100, Width: 1},
		{ID: 2, Arrival: 10, Runtime: 50, Estimate: 50, Width: 1},
	}
	var suspends, resumes int
	obs := &Observer{
		OnSuspend: func(now int64, j *job.Job) {
			suspends++
			if j.ID != 1 || now != 10 {
				t.Errorf("unexpected suspend: job %d at %d", j.ID, now)
			}
		},
		OnStart: func(now int64, j *job.Job) {
			if j.ID == 1 && now > 0 {
				resumes++
				if now != 60 {
					t.Errorf("j1 resumed at %d, want 60", now)
				}
			}
		},
	}
	ps, err := Run(Machine{Procs: 1}, jobs, &stubPreemptor{}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if suspends != 1 || resumes != 1 {
		t.Fatalf("suspends=%d resumes=%d", suspends, resumes)
	}
	byID := map[int]Placement{}
	for _, p := range ps {
		byID[p.Job.ID] = p
	}
	if p := byID[1]; p.Start != 0 || p.End != 150 {
		t.Fatalf("j1 placement %+v, want [0,150]", p)
	}
	if p := byID[2]; p.Start != 10 || p.End != 60 {
		t.Fatalf("j2 placement %+v, want [10,60]", p)
	}
}

func TestEngineStaleCompletionDropped(t *testing.T) {
	// j1's original completion (scheduled for t=100) must not complete the
	// job after it was suspended at 10. The stale event still *wakes the
	// scheduler* at t=100 — where the round-robin stub swaps the jobs
	// again — but j1 must accumulate exactly its 100s of runtime:
	// j1 [0,10), j2 [10,100), j1 [100,190), j2 resumes [190,600).
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 100, Estimate: 100, Width: 1},
		{ID: 2, Arrival: 10, Runtime: 500, Estimate: 500, Width: 1},
	}
	ps, err := Run(Machine{Procs: 1}, jobs, &stubPreemptor{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Placement{}
	for _, p := range ps {
		byID[p.Job.ID] = p
	}
	if p := byID[1]; p.End != 190 {
		t.Fatalf("j1 end = %d, want 190 (stale completion only wakes, never completes)", p.End)
	}
	if p := byID[2]; p.End != 600 {
		t.Fatalf("j2 end = %d, want 600", p.End)
	}
}

func TestEngineRejectsSuspendOfIdleJob(t *testing.T) {
	jobs := []*job.Job{{ID: 1, Arrival: 0, Runtime: 10, Estimate: 10, Width: 1}}
	_, err := Run(Machine{Procs: 1}, jobs, &stubPreemptor{bad: "suspend-idle"}, nil)
	if err == nil || !strings.Contains(err.Error(), "not running") {
		t.Fatalf("want not-running error, got %v", err)
	}
}

func TestEngineRejectsDoubleStartOfRunningJob(t *testing.T) {
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 100, Estimate: 100, Width: 1},
		{ID: 2, Arrival: 10, Runtime: 100, Estimate: 100, Width: 1},
	}
	p := &stubPreemptor{bad: "double-start"}
	_, err := Run(Machine{Procs: 1}, jobs, p, nil)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want double-start error, got %v", err)
	}
}

// chaosPreemptor preempts the runner pseudo-randomly at every scheduling
// opportunity, maximising suspend/resume churn on a 1-slot machine.
type chaosPreemptor struct {
	queue   []*job.Job
	running *job.Job
	flip    uint64
}

func (p *chaosPreemptor) Name() string                 { return "chaos" }
func (p *chaosPreemptor) Arrive(_ int64, j *job.Job)   { p.queue = append(p.queue, j) }
func (p *chaosPreemptor) Complete(_ int64, j *job.Job) { p.running = nil }
func (p *chaosPreemptor) Launch(now int64) []*job.Job {
	s, _ := p.LaunchAndPreempt(now)
	return s
}
func (p *chaosPreemptor) LaunchAndPreempt(now int64) (starts, suspends []*job.Job) {
	p.flip = p.flip*6364136223846793005 + 1442695040888963407
	if p.running != nil && len(p.queue) > 0 && p.flip%3 == 0 {
		suspends = append(suspends, p.running)
		p.queue = append(p.queue, p.running)
		p.running = nil
	}
	if p.running == nil && len(p.queue) > 0 {
		p.running = p.queue[0]
		p.queue = p.queue[1:]
		starts = append(starts, p.running)
	}
	return starts, suspends
}
func (p *chaosPreemptor) QueuedJobs() []*job.Job { return p.queue }

// TestEnginePreemptionChaos churns suspend/resume heavily and checks the
// engine's ground truth: every job's total elapsed time covers exactly its
// runtime plus non-negative suspension, and all jobs finish.
func TestEnginePreemptionChaos(t *testing.T) {
	var jobs []*job.Job
	clock := int64(0)
	for i := 1; i <= 60; i++ {
		clock += int64((i * 37) % 90)
		jobs = append(jobs, &job.Job{
			ID: i, Arrival: clock,
			Runtime:  int64((i*53)%400 + 1),
			Estimate: int64((i*53)%400 + 1),
			Width:    1,
		})
	}
	ps, err := Run(Machine{Procs: 1}, jobs, &chaosPreemptor{flip: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(jobs) {
		t.Fatalf("placements = %d, want %d", len(ps), len(jobs))
	}
	for _, p := range ps {
		if p.End-p.Start < p.Job.Runtime {
			t.Fatalf("%v finished in %ds, needs %ds", p.Job, p.End-p.Start, p.Job.Runtime)
		}
		if p.Start < p.Job.Arrival {
			t.Fatalf("%v started before arrival", p.Job)
		}
	}
	// On a 1-slot machine total busy time equals total runtime: the last
	// completion can be no earlier than first start + sum of runtimes.
	var total int64
	first, last := ps[0].Start, ps[0].End
	for _, p := range ps {
		total += p.Job.Runtime
		if p.Start < first {
			first = p.Start
		}
		if p.End > last {
			last = p.End
		}
	}
	if last-first < total {
		t.Fatalf("schedule span %d shorter than total work %d — work was lost", last-first, total)
	}
}

func TestEngineMultiplePreemptionsOfSameJob(t *testing.T) {
	// j1 is preempted twice (by j2 and then j3) and still completes with
	// exactly its runtime of execution.
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 100, Estimate: 100, Width: 1},
		{ID: 2, Arrival: 10, Runtime: 20, Estimate: 20, Width: 1},
		{ID: 3, Arrival: 40, Runtime: 20, Estimate: 20, Width: 1},
	}
	// stubPreemptor preempts the runner on every arrival and round-robins:
	// j1 [0,10), j2 [10,30), j1 [30,40), j3 [40,60), j1 [60,140).
	ps, err := Run(Machine{Procs: 1}, jobs, &stubPreemptor{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Placement{}
	for _, p := range ps {
		byID[p.Job.ID] = p
	}
	if p := byID[1]; p.Start != 0 || p.End != 140 {
		t.Fatalf("j1 placement %+v, want [0,140]", p)
	}
	if p := byID[3]; p.Start != 40 || p.End != 60 {
		t.Fatalf("j3 placement %+v, want [40,60]", p)
	}
}
