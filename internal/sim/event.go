// Package sim contains the discrete-event simulation engine that drives the
// backfilling schedulers: a deterministic event queue (arrivals and
// completions), the virtual clock, and the run loop that feeds events to a
// Scheduler and records job placements.
//
// The engine is deliberately small and single-threaded: supercomputer
// scheduling simulations are dominated by scheduler logic, not event
// dispatch, and single-threaded execution with total event ordering is what
// makes runs bit-for-bit reproducible.
//
// That cost split is measured, not assumed: BenchmarkEventQueue isolates
// dispatch while BenchmarkBatchRun/BenchmarkSessionStep time the engine
// end-to-end, and all three are tracked in the benchmark ledger (see
// PERFORMANCE.md) so a regression in either half fails `make bench-gate`.
// The scheduler-side hot paths the engine amortises across events are
// described in DESIGN.md §9.
package sim

import "repro/internal/job"

// EventKind discriminates the two event types the engine knows about.
type EventKind int

const (
	// Completion events fire when a running job releases its processors.
	// Completions sort before arrivals at the same instant so that a job
	// arriving exactly when another finishes sees the freed processors.
	Completion EventKind = iota
	// Arrival events fire when a job is submitted.
	Arrival
	// Timer events carry no job; they exist only to wake the scheduler at
	// a time it asked for via the Waker interface (e.g. a reservation
	// instant that coincides with no completion).
	Timer
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Completion:
		return "completion"
	case Arrival:
		return "arrival"
	case Timer:
		return "timer"
	default:
		return "unknown"
	}
}

// Event is one scheduled occurrence in virtual time. For completion
// events, epoch identifies which dispatch of the job the event belongs to:
// suspending a job increments its epoch, so the stale completion is dropped
// when popped.
type Event struct {
	Time  int64
	Kind  EventKind
	Job   *job.Job
	epoch int
	seq   int64 // insertion order, the final tie-breaker
}

// eventLess is the total event order: by time, then kind (completions
// before arrivals), then insertion order.
func eventLess(a, b Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.seq < b.seq
}

// EventQueue is a deterministic priority queue of events. Ties on time break
// by kind (completions first) and then by insertion order, so identical
// inputs always replay identically.
//
// The heap stores Event values in a hand-rolled binary heap rather than
// *Event through container/heap: no per-event allocation on Push (the only
// allocations are slice growth, amortised away once the backing array is
// warm) and no interface boxing on Pop. alloc pins in event_test.go keep the
// steady state at zero allocations per push/pop pair.
type EventQueue struct {
	h    []Event
	next int64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Push enqueues an event at time t.
func (q *EventQueue) Push(t int64, kind EventKind, j *job.Job) {
	q.PushEpoch(t, kind, j, 0)
}

// PushEpoch enqueues an event tagged with a dispatch epoch (see Event).
func (q *EventQueue) PushEpoch(t int64, kind EventKind, j *job.Job, epoch int) {
	q.h = append(q.h, Event{Time: t, Kind: kind, Job: j, epoch: epoch, seq: q.next})
	q.next++
	q.siftUp(len(q.h) - 1)
}

// Pop removes and returns the earliest event; ok is false when empty.
func (q *EventQueue) Pop() (e Event, ok bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	e = q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h[n] = Event{} // drop the Job pointer for the collector
	q.h = q.h[:n]
	if n > 0 {
		q.siftDown(0)
	}
	return e, true
}

// Peek returns the earliest event without removing it; ok is false when
// empty.
func (q *EventQueue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// siftUp restores the heap property after appending at index i.
func (q *EventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.h[i], q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// siftDown restores the heap property after replacing the root.
func (q *EventQueue) siftDown(i int) {
	n := len(q.h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && eventLess(q.h[right], q.h[left]) {
			least = right
		}
		if !eventLess(q.h[least], q.h[i]) {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}
