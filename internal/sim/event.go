// Package sim contains the discrete-event simulation engine that drives the
// backfilling schedulers: a deterministic event queue (arrivals and
// completions), the virtual clock, and the run loop that feeds events to a
// Scheduler and records job placements.
//
// The engine is deliberately small and single-threaded: supercomputer
// scheduling simulations are dominated by scheduler logic, not event
// dispatch, and single-threaded execution with total event ordering is what
// makes runs bit-for-bit reproducible.
//
// That cost split is measured, not assumed: BenchmarkEventQueue isolates
// dispatch while BenchmarkBatchRun/BenchmarkSessionStep time the engine
// end-to-end, and all three are tracked in the benchmark ledger (see
// PERFORMANCE.md) so a regression in either half fails `make bench-gate`.
// The scheduler-side hot paths the engine amortises across events are
// described in DESIGN.md §9.
package sim

import (
	"container/heap"

	"repro/internal/job"
)

// EventKind discriminates the two event types the engine knows about.
type EventKind int

const (
	// Completion events fire when a running job releases its processors.
	// Completions sort before arrivals at the same instant so that a job
	// arriving exactly when another finishes sees the freed processors.
	Completion EventKind = iota
	// Arrival events fire when a job is submitted.
	Arrival
	// Timer events carry no job; they exist only to wake the scheduler at
	// a time it asked for via the Waker interface (e.g. a reservation
	// instant that coincides with no completion).
	Timer
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Completion:
		return "completion"
	case Arrival:
		return "arrival"
	case Timer:
		return "timer"
	default:
		return "unknown"
	}
}

// Event is one scheduled occurrence in virtual time. For completion
// events, epoch identifies which dispatch of the job the event belongs to:
// suspending a job increments its epoch, so the stale completion is dropped
// when popped.
type Event struct {
	Time  int64
	Kind  EventKind
	Job   *job.Job
	epoch int
	seq   int64 // insertion order, the final tie-breaker
}

// eventHeap implements container/heap ordering by (Time, Kind, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventQueue is a deterministic priority queue of events. Ties on time break
// by kind (completions first) and then by insertion order, so identical
// inputs always replay identically.
type EventQueue struct {
	h    eventHeap
	next int64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Push enqueues an event at time t.
func (q *EventQueue) Push(t int64, kind EventKind, j *job.Job) {
	q.PushEpoch(t, kind, j, 0)
}

// PushEpoch enqueues an event tagged with a dispatch epoch (see Event).
func (q *EventQueue) PushEpoch(t int64, kind EventKind, j *job.Job, epoch int) {
	e := &Event{Time: t, Kind: kind, Job: j, epoch: epoch, seq: q.next}
	q.next++
	heap.Push(&q.h, e)
}

// Pop removes and returns the earliest event, or nil when empty.
func (q *EventQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Peek returns the earliest event without removing it, or nil when empty.
func (q *EventQueue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }
