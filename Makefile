# Standard development targets. Everything is stdlib Go; no external tools.

GO ?= go

.PHONY: all build test test-verbose race serve-race fed-race replica-race vet bench bench-json bench-gate doclint experiments results examples cover clean fuzz-smoke check serve-smoke crash-smoke quorum-smoke

all: build vet test

# The full pre-merge gate: compile, vet, doc-comment lint, unit tests,
# race detector, a short smoke run of every fuzz target (see fuzz-smoke),
# the SIGKILL/recover durability drill (see crash-smoke), and the
# follower-kill quorum drill (see quorum-smoke).
check: build vet doclint test race fuzz-smoke crash-smoke quorum-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree; internal/runner introduced the
# repo's first real concurrency, so run this before merging scheduler or
# runner changes.
race:
	$(GO) test -race ./...

# Focused race-detector pass over the serving layer and the event core —
# the packages the lock-free read path touches. -count=2 reruns the stress
# tests with fresh schedules; CI runs this as its own job.
serve-race:
	$(GO) test -race -count=2 ./internal/serve ./internal/sim

# Focused race-detector pass over the federation layer: scatter-gather
# reads, routing, and the merged snapshot hammered while every shard
# replays at full speed. -count=2 reruns with fresh schedules; CI runs
# this as its own job (fed-race).
fed-race:
	$(GO) test -race -count=2 ./internal/fed

# Focused race-detector pass over the replication layer: the live-follow
# stress test tails a journal (and the WAL-shipping endpoint) while the
# leader's scheduler goroutine appends at full tilt, plus the lock-free
# tailer's own concurrency tests in internal/wal. -count=2 reruns with
# fresh schedules; CI runs this as its own job (replica-race).
replica-race:
	$(GO) test -race -count=2 ./internal/replica ./internal/wal

# Full test log, as recorded in test_output.txt.
test-verbose:
	$(GO) test -v ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark ledger (see PERFORMANCE.md). bench-json runs the tracked
# benchmark suite — engine hot paths in the root package, the serving read
# path in internal/serve, the durability layer (journal append and crash
# recovery), the federation routing/merge path in internal/fed, and the
# replication apply/read path in internal/replica — and writes the
# machine-readable run to bench_current.json; bench-gate compares it
# against the committed BENCH_PR10.json baseline and fails on any
# regression beyond BENCH_TOLERANCE (a fraction: 0.20 = 20%).
BENCHTIME ?= 1s
BENCH_TOLERANCE ?= 0.20

bench-json:
	$(GO) test -run='^$$' -bench='BenchmarkProfile|BenchmarkScheduler|BenchmarkCompression$$|BenchmarkSessionStep|BenchmarkBatchRun|BenchmarkEventQueue|BenchmarkServeRead|BenchmarkSnapshot|BenchmarkForecastCached|BenchmarkForecastUncached|BenchmarkWALAppend|BenchmarkWALFsyncedAppend|BenchmarkRecovery|BenchmarkFed|BenchmarkReplica' \
		-benchtime=$(BENCHTIME) -benchmem . ./internal/serve ./internal/wal ./internal/fed ./internal/replica \
		| $(GO) run ./cmd/benchdiff -parse > bench_current.json

bench-gate: bench-json
	$(GO) run ./cmd/benchdiff -gate -ledger BENCH_PR10.json -current bench_current.json -tolerance $(BENCH_TOLERANCE)

# Short fuzzing pass over every fuzz target. Each target gets FUZZTIME of
# coverage-guided input generation on top of its checked-in seed corpus;
# -run='^$$' skips the unit tests so only the fuzzers execute. Go allows one
# -fuzz target per invocation, hence one line per target.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/swf -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/swf -run='^$$' -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzProfileOps -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzProfileEquivalence -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzSchedulerRun -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/sched -run='^$$' -fuzz=FuzzLaunchIncremental -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/serve -run='^$$' -fuzz=FuzzWALReplay -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/fed -run='^$$' -fuzz=FuzzShardRouter -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/fed -run='^$$' -fuzz=FuzzReadBalancer -fuzztime=$(FUZZTIME)

# Every package must carry a doc comment; see scripts/doclint.sh.
doclint:
	sh scripts/doclint.sh

# End-to-end smoke test of the online scheduling service: boot schedd on
# a random port, push three jobs through schedctl, assert completion and
# a clean SIGTERM drain.
serve-smoke:
	sh scripts/serve-smoke.sh

# Durability drill: SIGKILL a journaling schedd mid-write-burst five times
# on one shared journal, then SIGKILL one member of a four-shard federation
# per cycle while its siblings keep serving; every cycle must recover
# byte-identically (state hash pinned by an independent shadow replay) with
# no acknowledged write lost.
crash-smoke:
	sh scripts/crash-smoke.sh

# Quorum drill: a two-shard federation with -ack-quorum 1 and two
# followers per shard; one follower is SIGKILLed mid-burst per cycle.
# Writes must keep acknowledging through the survivor, no acknowledged
# write may be lost (per-shard shadow replay), and the quorum counters
# must show zero degraded or rejected writes.
quorum-smoke:
	sh scripts/quorum-smoke.sh

# Regenerate every paper table/figure and the extension studies.
experiments:
	$(GO) run ./cmd/experiments -run all

# One file per artifact under results/.
results:
	$(GO) run ./cmd/experiments -run all -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/policy_comparison
	$(GO) run ./examples/estimate_sensitivity
	$(GO) run ./examples/capacity_planning
	$(GO) run ./examples/trace_study
	$(GO) run ./examples/starvation

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_current.json
	rm -rf results
