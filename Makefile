# Standard development targets. Everything is stdlib Go; no external tools.

GO ?= go

.PHONY: all build test test-verbose race vet bench experiments results examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the whole tree; internal/runner introduced the
# repo's first real concurrency, so run this before merging scheduler or
# runner changes.
race:
	$(GO) test -race ./...

# Full test log, as recorded in test_output.txt.
test-verbose:
	$(GO) test -v ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table/figure and the extension studies.
experiments:
	$(GO) run ./cmd/experiments -run all

# One file per artifact under results/.
results:
	$(GO) run ./cmd/experiments -run all -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/policy_comparison
	$(GO) run ./examples/estimate_sensitivity
	$(GO) run ./examples/capacity_planning
	$(GO) run ./examples/trace_study
	$(GO) run ./examples/starvation

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
	rm -rf results
