// Command gridsim simulates multi-site grid scheduling with the submission
// strategies of the authors' HPDC'02 companion paper: single-site
// round-robin, omniscient least-loaded routing, and multiple simultaneous
// requests (replicate to every site, first start wins, cancel the rest).
//
//	gridsim -sites 4 -procs 128 -jobs 4000 -sched easy
//	gridsim -sites 2 -procs 256 -routing replicate-all -est actual
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/grid"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		nSites  = flag.Int("sites", 4, "number of identical sites")
		procs   = flag.Int("procs", 128, "processors per site")
		jobs    = flag.Int("jobs", 4000, "number of jobs")
		seed    = flag.Int64("seed", 42, "random seed")
		load    = flag.Float64("load", 0.75, "aggregate offered load across the grid")
		est     = flag.String("est", "actual", "estimate model: exact, actual, or R=<factor>")
		kind    = flag.String("sched", "easy", "per-site scheduler kind")
		policy  = flag.String("policy", "FCFS", "per-site priority policy")
		routing = flag.String("routing", "", "single, least-loaded, replicate-all (default: compare all three)")
	)
	flag.Parse()

	js, err := buildJobs(*jobs, *seed, *load, *est, *nSites, *procs)
	if err != nil {
		fatal(err)
	}
	pol, err := sched.PolicyByName(*policy)
	if err != nil {
		fatal(err)
	}
	mk, err := sched.MakerFor(*kind, pol)
	if err != nil {
		fatal(err)
	}
	sites := make([]grid.Site, *nSites)
	for i := range sites {
		sites[i] = grid.Site{Name: fmt.Sprintf("site%d", i), Procs: *procs, Make: mk}
	}

	routings, err := pickRoutings(*routing)
	if err != nil {
		fatal(err)
	}
	th := job.PaperThresholds()
	fmt.Printf("%d sites × %d procs, %d jobs, %s(%s), estimates=%s\n\n",
		*nSites, *procs, len(js), *kind, *policy, *est)
	fmt.Printf("%-14s %12s %12s %14s %16s\n", "routing", "avg slowdwn", "avg wait", "max turnaround", "utilization %")
	fmt.Println(strings.Repeat("-", 74))
	for _, r := range routings {
		ps, err := grid.Run(sites, js, r)
		if err != nil {
			fatal(err)
		}
		rep := metrics.Analyze(r.String(), grid.ToSimPlacements(ps), th, *nSites**procs)
		fmt.Printf("%-14s %12.2f %12.1f %14d %16.1f\n",
			r.String(), rep.Overall.MeanSlowdown, rep.Overall.MeanWait,
			rep.Overall.MaxTurnaround, 100*rep.Utilization)
	}
}

func buildJobs(n int, seed int64, load float64, est string, nSites, procs int) ([]*job.Job, error) {
	m, err := workload.NewSDSC(load)
	if err != nil {
		return nil, err
	}
	m.Procs = procs // per-site machine size caps widths
	js, err := m.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	// The calibrated stream targets one site; compress gaps so the grid's
	// aggregate offered load matches the requested level.
	js, err = trace.ScaleLoad(js, 1/float64(nSites))
	if err != nil {
		return nil, err
	}
	em, err := workload.EstimateModelByName(est)
	if err != nil {
		return nil, err
	}
	return workload.ApplyEstimates(js, em, seed+1), nil
}

func pickRoutings(s string) ([]grid.Routing, error) {
	switch s {
	case "":
		return []grid.Routing{grid.Single, grid.LeastLoaded, grid.ReplicateAll}, nil
	case "single":
		return []grid.Routing{grid.Single}, nil
	case "least-loaded":
		return []grid.Routing{grid.LeastLoaded}, nil
	case "replicate-all":
		return []grid.Routing{grid.ReplicateAll}, nil
	default:
		return nil, fmt.Errorf("unknown routing %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridsim:", err)
	os.Exit(1)
}
