package main

import (
	"testing"

	"repro/internal/grid"
)

func TestPickRoutings(t *testing.T) {
	all, err := pickRoutings("")
	if err != nil || len(all) != 3 {
		t.Fatalf("default routings = %v, %v", all, err)
	}
	one, err := pickRoutings("replicate-all")
	if err != nil || len(one) != 1 || one[0] != grid.ReplicateAll {
		t.Fatalf("replicate-all = %v, %v", one, err)
	}
	if _, err := pickRoutings("bogus"); err == nil {
		t.Fatal("unknown routing should error")
	}
}

func TestBuildJobs(t *testing.T) {
	jobs, err := buildJobs(300, 1, 0.7, "actual", 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 300 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, j := range jobs {
		if j.Width > 64 {
			t.Fatalf("job wider than a site: %v", j)
		}
		if err := j.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := buildJobs(10, 1, 0.7, "bogus", 2, 64); err == nil {
		t.Fatal("bad estimate model should error")
	}
}
