package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/swf"
	"repro/internal/workload"
)

func TestBuildModelBuiltin(t *testing.T) {
	m, err := buildModel("", "SDSC", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Procs != 128 {
		t.Fatalf("procs = %d", m.Procs)
	}
	if _, err := buildModel("", "nope", 0.7); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestBuildModelFitted(t *testing.T) {
	// Write a small trace, then fit a model to it.
	base, err := workload.NewSDSC(0.7)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := base.Generate(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.swf")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := swf.Write(f, &swf.Trace{Jobs: jobs, MaxProcs: 128, Header: map[string]string{"MaxProcs": "128"}}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := buildModel(path, "ignored", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if m.Procs != 128 {
		t.Fatalf("fitted procs = %d", m.Procs)
	}
	out, err := m.Generate(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("generated %d", len(out))
	}

	if _, err := buildModel(filepath.Join(t.TempDir(), "missing.swf"), "", 0.8); err == nil {
		t.Fatal("missing fit file should error")
	}
}
