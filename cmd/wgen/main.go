// Command wgen generates synthetic workload traces in Standard Workload
// Format, calibrated to the paper's CTC or SDSC trace models.
//
//	wgen -model CTC -jobs 10000 -load 0.85 -est actual -o ctc-high.swf
//	wgen -model SDSC -jobs 5000 | head
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/swf"
	"repro/internal/workload"
)

func main() {
	var (
		model   = flag.String("model", "CTC", "trace model: CTC or SDSC (ignored with -fit)")
		fitPath = flag.String("fit", "", "fit the generator to this SWF trace instead of a built-in model")
		jobs    = flag.Int("jobs", 5000, "number of jobs")
		seed    = flag.Int64("seed", 42, "random seed")
		load    = flag.Float64("load", 0.85, "target offered load")
		diurnal = flag.Bool("diurnal", false, "modulate arrivals with a day/night cycle")
		est     = flag.String("est", "exact", "estimate model: exact, actual, or R=<factor>")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	m, err := buildModel(*fitPath, *model, *load)
	if err != nil {
		fatal(err)
	}
	if *diurnal {
		m.Daily = workload.StandardDaily()
	}
	js, err := m.Generate(*jobs, *seed)
	if err != nil {
		fatal(err)
	}
	em, err := workload.EstimateModelByName(*est)
	if err != nil {
		fatal(err)
	}
	js = workload.ApplyEstimates(js, em, *seed+1)

	tr := &swf.Trace{
		Jobs:     js,
		MaxProcs: m.Procs,
		Header: map[string]string{
			"Computer": fmt.Sprintf("synthetic %s model (backfilling characterization repro)", m.Name),
			"MaxProcs": strconv.Itoa(m.Procs),
			"Note":     fmt.Sprintf("seed=%d load=%g estimates=%s", *seed, *load, em.Name()),
			"Version":  "2",
		},
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := swf.Write(w, tr); err != nil {
		fatal(err)
	}
}

// buildModel returns either a built-in calibrated model or one fitted to an
// SWF trace (re-calibrated to the requested load).
func buildModel(fitPath, model string, load float64) (*workload.Model, error) {
	if fitPath == "" {
		return workload.ByName(model, load)
	}
	tr, err := swf.Open(fitPath, swf.Options{})
	if err != nil {
		return nil, err
	}
	m, err := workload.Fit("fitted:"+fitPath, tr.Jobs, tr.MaxProcs, workload.FitOptions{Smooth: true})
	if err != nil {
		return nil, err
	}
	if err := m.CalibrateLoad(load, 20000); err != nil {
		return nil, err
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wgen:", err)
	os.Exit(1)
}
