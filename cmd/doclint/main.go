// Command doclint enforces doc comments on exported identifiers.
//
// Usage:
//
//	doclint [-allow file] dir [dir...]
//
// It parses every non-test .go file in each directory (not recursing) and
// reports exported top-level identifiers — functions, methods on exported
// types, and every exported type, const, and var spec — that carry no doc
// comment. godoc and pkg.go.dev render such identifiers with an empty
// synopsis, and in this codebase the doc comment is where an exported
// name's contract lives; an undocumented export is a review failure, so
// it is a lint failure too.
//
// The allowlist file (one identifier per line, "pkgdir.Name" or
// "pkgdir.Type.Method", # comments allowed) exempts identifiers whose
// names are their entire contract. Keep it short: the allowlist is for
// the rare self-evident export, not a pressure valve.
//
// Run via scripts/doclint.sh (part of `make check`).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	allowFile := flag.String("allow", "", "allowlist file: one exempt identifier per line (dir.Name)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: doclint [-allow file] dir [dir...]")
		os.Exit(2)
	}
	allow, err := loadAllow(*allowFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	var missing []string
	used := make(map[string]bool)
	for _, dir := range flag.Args() {
		m, err := lintDir(dir, allow, used)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	for key := range allow {
		if !used[key] {
			missing = append(missing, fmt.Sprintf("%s: allowlisted but not found (stale allowlist entry)", key))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Fprintf(os.Stderr, "doclint: %s\n", m)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) without doc comments\n", len(missing))
		os.Exit(1)
	}
}

// loadAllow reads the allowlist: one identifier per line, blank lines and
// # comments skipped.
func loadAllow(path string) (map[string]bool, error) {
	allow := make(map[string]bool)
	if path == "" {
		return allow, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = true
	}
	return allow, sc.Err()
}

// lintDir checks one package directory and returns the undocumented
// exported identifiers, marking consumed allowlist entries in used.
func lintDir(dir string, allow, used map[string]bool) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var missing []string
	fset := token.NewFileSet()
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range file.Decls {
			missing = append(missing, lintDecl(fset, dir, decl, allow, used)...)
		}
	}
	return missing, nil
}

// lintDecl reports the undocumented exported identifiers one top-level
// declaration introduces.
func lintDecl(fset *token.FileSet, dir string, decl ast.Decl, allow, used map[string]bool) []string {
	var missing []string
	report := func(pos token.Pos, name string) {
		key := filepath.Base(dir) + "." + name
		if allow[key] {
			used[key] = true
			return
		}
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s has no doc comment", p.Filename, p.Line, name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) == 1 {
			recv := receiverType(d.Recv.List[0].Type)
			if !ast.IsExported(recv) {
				return nil // method on an unexported type: not API surface
			}
			name = recv + "." + name
		}
		if !ast.IsExported(d.Name.Name) {
			return nil
		}
		if d.Doc == nil {
			report(d.Pos(), name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if ast.IsExported(sp.Name.Name) && sp.Doc == nil && d.Doc == nil {
					report(sp.Pos(), sp.Name.Name)
				}
			case *ast.ValueSpec:
				// A const/var spec is documented by its own comment or by
				// the group's: a documented block covers its members (the
				// idiomatic grouped-const form).
				if sp.Doc != nil || d.Doc != nil {
					continue
				}
				for _, n := range sp.Names {
					if ast.IsExported(n.Name) {
						report(n.Pos(), n.Name)
					}
				}
			}
		}
	}
	return missing
}

// receiverType unwraps a method receiver to its type name.
func receiverType(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
