package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSynthetic(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "SDSC", "-jobs", "20", "-sched", "easy", "-policy", "SJF"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"EASY(SJF)", "avg slowdown", "utilization"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSVGOutput(t *testing.T) {
	svgPath := filepath.Join(t.TempDir(), "gantt.svg")
	var out bytes.Buffer
	if err := run([]string{"-model", "CTC", "-jobs", "10", "-svg", svgPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatalf("SVG file not written: %v", err)
	}
	if !strings.HasPrefix(string(data), "<svg") || !strings.Contains(string(data), "</svg>") {
		t.Errorf("SVG file malformed:\n%.200s", data)
	}
	if !strings.Contains(out.String(), "wrote "+svgPath) {
		t.Errorf("output missing write confirmation:\n%s", out.String())
	}
}

func TestRunHeatmap(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "SDSC", "-jobs", "15", "-heatmap"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"utilization heatmap", "arrival heatmap"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSWF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.swf")
	trace := `; MaxProcs: 8
1 0 0 100 4 -1 -1 4 100 -1 1 1 -1 -1 -1 -1 -1 -1
2 10 0 50 8 -1 -1 8 60 -1 1 1 -1 -1 -1 -1 -1 -1
`
	if err := os.WriteFile(path, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-swf", path, "-sched", "conservative"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Conservative(FCFS)") {
		t.Errorf("output missing scheduler name:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "bogus"},
		{"-est", "bogus"},
		{"-sched", "bogus"},
		{"-policy", "bogus"},
		{"-swf", "/nonexistent.swf"},
		{"-jobs", "x"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
