// Command schedviz simulates a workload under one scheduler and renders
// the resulting schedule as text charts: machine utilization over time,
// queue depth, and (for small runs) a per-job Gantt chart.
//
//	schedviz -model SDSC -jobs 30 -sched easy -policy SJF
//	schedviz -swf trace.swf -jobs 500 -sched conservative -width 120
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/swf"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	var (
		model   = flag.String("model", "SDSC", "synthetic trace model: CTC or SDSC (ignored with -swf)")
		swfPath = flag.String("swf", "", "read workload from this SWF file")
		jobs    = flag.Int("jobs", 30, "number of jobs")
		seed    = flag.Int64("seed", 42, "random seed")
		load    = flag.Float64("load", 0.85, "offered load for synthetic traces")
		est     = flag.String("est", "keep", "estimate model: keep, exact, actual, or R=<factor>")
		sched   = flag.String("sched", "easy", "scheduler kind")
		policy  = flag.String("policy", "FCFS", "priority policy")
		width   = flag.Int("width", 100, "chart width in columns")
		heat    = flag.Bool("heatmap", false, "also render weekday×hour utilization and arrival heatmaps")
		svgPath = flag.String("svg", "", "also write a vector Gantt chart to this SVG file")
	)
	flag.Parse()

	js, procs, err := load2(*swfPath, *model, *jobs, *seed, *load)
	if err != nil {
		fatal(err)
	}
	em, err := workload.EstimateModelByName(*est)
	if err != nil {
		fatal(err)
	}
	js = workload.ApplyEstimates(js, em, *seed+1)

	res, err := core.Run(core.Config{Procs: procs, Scheduler: *sched, Policy: *policy, Audit: true}, js)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s  avg slowdown %.2f  avg turnaround %.0fs  utilization %.1f%%\n\n",
		res.Report.Scheduler, res.Report.Overall.MeanSlowdown,
		res.Report.Overall.MeanTurnaround, 100*res.Report.Utilization)
	if err := viz.Render(os.Stdout, res.Placements, viz.Options{Procs: procs, Width: *width}); err != nil {
		fatal(err)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		if err := viz.RenderSVG(f, res.Placements, viz.SVGOptions{Procs: procs}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
	if *heat {
		fmt.Println()
		util, err := metrics.UtilizationHeatmap(res.Placements, procs)
		if err != nil {
			fatal(err)
		}
		if err := viz.RenderHeatmap(os.Stdout, util, "utilization heatmap"); err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := viz.RenderHeatmap(os.Stdout, metrics.ArrivalHeatmap(res.Placements), "arrival heatmap (jobs/hour)"); err != nil {
			fatal(err)
		}
	}
}

func load2(swfPath, model string, jobs int, seed int64, load float64) ([]*job.Job, int, error) {
	if swfPath != "" {
		tr, err := swf.Open(swfPath, swf.Options{MaxJobs: jobs})
		if err != nil {
			return nil, 0, err
		}
		return tr.Jobs, tr.MaxProcs, nil
	}
	m, err := workload.ByName(model, load)
	if err != nil {
		return nil, 0, err
	}
	js, err := m.Generate(jobs, seed)
	if err != nil {
		return nil, 0, err
	}
	return js, m.Procs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "schedviz:", err)
	os.Exit(1)
}
