// Command schedviz simulates a workload under one scheduler and renders
// the resulting schedule as text charts: machine utilization over time,
// queue depth, and (for small runs) a per-job Gantt chart.
//
//	schedviz -model SDSC -jobs 30 -sched easy -policy SJF
//	schedviz -swf trace.swf -jobs 500 -sched conservative -width 120
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/swf"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedviz", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		model   = fs.String("model", "SDSC", "synthetic trace model: CTC or SDSC (ignored with -swf)")
		swfPath = fs.String("swf", "", "read workload from this SWF file")
		jobs    = fs.Int("jobs", 30, "number of jobs")
		seed    = fs.Int64("seed", 42, "random seed")
		load    = fs.Float64("load", 0.85, "offered load for synthetic traces")
		est     = fs.String("est", "keep", "estimate model: keep, exact, actual, or R=<factor>")
		sched   = fs.String("sched", "easy", "scheduler kind")
		policy  = fs.String("policy", "FCFS", "priority policy")
		width   = fs.Int("width", 100, "chart width in columns")
		heat    = fs.Bool("heatmap", false, "also render weekday×hour utilization and arrival heatmaps")
		svgPath = fs.String("svg", "", "also write a vector Gantt chart to this SVG file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	js, procs, err := load2(*swfPath, *model, *jobs, *seed, *load)
	if err != nil {
		return err
	}
	em, err := workload.EstimateModelByName(*est)
	if err != nil {
		return err
	}
	js = workload.ApplyEstimates(js, em, *seed+1)

	res, err := core.Run(core.Config{Procs: procs, Scheduler: *sched, Policy: *policy, Audit: true}, js)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s  avg slowdown %.2f  avg turnaround %.0fs  utilization %.1f%%\n\n",
		res.Report.Scheduler, res.Report.Overall.MeanSlowdown,
		res.Report.Overall.MeanTurnaround, 100*res.Report.Utilization)
	if err := viz.Render(out, res.Placements, viz.Options{Procs: procs, Width: *width}); err != nil {
		return err
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		if err := viz.RenderSVG(f, res.Placements, viz.SVGOptions{Procs: procs}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *svgPath)
	}
	if *heat {
		fmt.Fprintln(out)
		util, err := metrics.UtilizationHeatmap(res.Placements, procs)
		if err != nil {
			return err
		}
		if err := viz.RenderHeatmap(out, util, "utilization heatmap"); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := viz.RenderHeatmap(out, metrics.ArrivalHeatmap(res.Placements), "arrival heatmap (jobs/hour)"); err != nil {
			return err
		}
	}
	return nil
}

func load2(swfPath, model string, jobs int, seed int64, load float64) ([]*job.Job, int, error) {
	if swfPath != "" {
		tr, err := swf.Open(swfPath, swf.Options{MaxJobs: jobs})
		if err != nil {
			return nil, 0, err
		}
		return tr.Jobs, tr.MaxProcs, nil
	}
	m, err := workload.ByName(model, load)
	if err != nil {
		return nil, 0, err
	}
	js, err := m.Generate(jobs, seed)
	if err != nil {
		return nil, 0, err
	}
	return js, m.Procs, nil
}
