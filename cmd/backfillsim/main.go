// Command backfillsim runs one scheduling simulation and prints a full
// metric report: overall and per-category slowdowns, turnaround and wait
// times, worst cases, and utilization.
//
// Workloads come from either a synthetic trace model or a Standard Workload
// Format file:
//
//	backfillsim -model CTC -jobs 5000 -load 0.85 -sched easy -policy SJF
//	backfillsim -swf /path/to/CTC-SP2.swf -sched conservative
//	backfillsim -model SDSC -est actual -sched selective:adaptive -policy XF
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		model    = flag.String("model", "CTC", "synthetic trace model: CTC or SDSC (ignored with -swf)")
		swfPath  = flag.String("swf", "", "read workload from this SWF file instead of a synthetic model")
		jobCount = flag.Int("jobs", 5000, "number of jobs to generate (or keep from the SWF file)")
		seed     = flag.Int64("seed", 42, "random seed")
		load     = flag.Float64("load", 0.85, "offered load for synthetic traces")
		est      = flag.String("est", "keep", "estimate model: keep, exact, actual, or R=<factor> (keep preserves SWF estimates; synthetic models generate exact ones)")
		sched    = flag.String("sched", "easy", "scheduler: conservative, easy, none, selective:<x>, selective:adaptive")
		policy   = flag.String("policy", "FCFS", "priority policy: FCFS, SJF, XF, LJF, WFP")
		procs    = flag.Int("procs", 0, "machine size override (default: model/trace size)")
		auditOn  = flag.Bool("audit", true, "run under the invariant auditor; any violation fails the run")
	)
	flag.Parse()

	jobs, machprocs, err := loadWorkload(*swfPath, *model, *jobCount, *seed, *load)
	if err != nil {
		fatal(err)
	}
	if *procs > 0 {
		machprocsOld := machprocs
		machprocs = *procs
		if machprocs < machprocsOld {
			jobs = trace.FilterWidth(jobs, machprocs)
		}
	}

	em, err := workload.EstimateModelByName(*est)
	if err != nil {
		fatal(err)
	}
	jobs = workload.ApplyEstimates(jobs, em, *seed+1)

	cfg := core.Config{Procs: machprocs, Scheduler: *sched, Policy: *policy, Audit: *auditOn}
	start := time.Now()
	res, err := core.Run(cfg, jobs)
	if err != nil {
		fatal(err)
	}
	printReport(res, len(jobs), machprocs, time.Since(start))
}

func loadWorkload(swfPath, model string, jobs int, seed int64, load float64) ([]*job.Job, int, error) {
	if swfPath != "" {
		tr, err := swf.Open(swfPath, swf.Options{MaxJobs: jobs})
		if err != nil {
			return nil, 0, err
		}
		if tr.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "backfillsim: skipped %d unusable records\n", tr.Skipped)
		}
		return tr.Jobs, tr.MaxProcs, nil
	}
	m, err := workload.ByName(model, load)
	if err != nil {
		return nil, 0, err
	}
	js, err := m.Generate(jobs, seed)
	if err != nil {
		return nil, 0, err
	}
	return js, m.Procs, nil
}

func printReport(res *core.Result, jobs, procs int, elapsed time.Duration) {
	r := res.Report
	fmt.Printf("scheduler        %s\n", r.Scheduler)
	fmt.Printf("jobs             %d on %d processors\n", jobs, procs)
	fmt.Printf("simulated span   %s\n", time.Duration(r.Makespan)*time.Second)
	fmt.Printf("utilization      %.1f%%\n", 100*r.Utilization)
	fmt.Printf("loss of capacity %.1f%% (idle while jobs queued)\n", 100*r.LossOfCapacity)
	fmt.Printf("wall time        %s\n\n", elapsed.Round(time.Millisecond))

	row := func(name string, s metrics.Summary) {
		fmt.Printf("%-18s %6d  %12.2f  %14.1f  %12.1f  %14d\n",
			name, s.N, s.MeanSlowdown, s.MeanTurnaround, s.MeanWait, s.MaxTurnaround)
	}
	fmt.Printf("%-18s %6s  %12s  %14s  %12s  %14s\n",
		"class", "jobs", "avg slowdown", "avg turnaround", "avg wait", "max turnaround")
	fmt.Println("--------------------------------------------------------------------------------------")
	row("overall", r.Overall)
	for _, c := range job.Categories() {
		row(c.String(), r.ByCategory[c])
	}
	row("well-estimated", r.ByQuality[job.WellEstimated])
	row("poorly-estimated", r.ByQuality[job.PoorlyEstimated])
	fmt.Printf("\nschedule fingerprint: %016x\n", res.Fingerprint)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "backfillsim:", err)
	os.Exit(1)
}
