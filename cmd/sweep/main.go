// Command sweep runs a factorial scheduling study and emits long-form CSV:
// one row per (workload × load × estimate model × scheduler × policy) cell.
//
//	sweep -models CTC,SDSC -jobs 3000 -loads 0.7,0.85,0.95 \
//	      -scheds conservative,easy -policies FCFS,SJF,XF -ests exact,actual \
//	      -o study.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	var (
		models   = flag.String("models", "CTC", "comma-separated trace models (CTC, SDSC)")
		jobs     = flag.Int("jobs", 3000, "jobs per workload")
		seed     = flag.Int64("seed", 42, "random seed")
		baseLoad = flag.Float64("base-load", 0.6, "offered load the base workloads are generated at")
		loads    = flag.String("loads", "", "comma-separated target loads (empty: as generated)")
		scheds   = flag.String("scheds", "conservative,easy", "comma-separated scheduler kinds")
		policies = flag.String("policies", "FCFS,SJF,XF", "comma-separated priority policies")
		ests     = flag.String("ests", "exact", "comma-separated estimate models")
		out      = flag.String("o", "", "output CSV file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress per-cell progress on stderr")
	)
	flag.Parse()

	design := sweep.Design{
		Schedulers: splitList(*scheds),
		Policies:   splitList(*policies),
		Estimates:  splitList(*ests),
		Seed:       *seed,
	}
	for _, name := range splitList(*models) {
		m, err := workload.ByName(name, *baseLoad)
		if err != nil {
			fatal(err)
		}
		js, err := m.Generate(*jobs, *seed)
		if err != nil {
			fatal(err)
		}
		design.Workloads = append(design.Workloads, sweep.Workload{
			Name: m.Name, Jobs: js, Procs: m.Procs, BaseLoad: *baseLoad,
		})
	}
	if *loads != "" {
		for _, s := range splitList(*loads) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				fatal(fmt.Errorf("bad load %q: %w", s, err))
			}
			design.Loads = append(design.Loads, v)
		}
	}

	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}
	recs, err := sweep.Run(design, progress)
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := sweep.WriteCSV(w, recs); err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
