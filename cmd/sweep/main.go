// Command sweep runs a factorial scheduling study and emits long-form CSV:
// one row per (workload × load × estimate model × scheduler × policy) cell.
//
//	sweep -models CTC,SDSC -jobs 3000 -loads 0.7,0.85,0.95 \
//	      -scheds conservative,easy -policies FCFS,SJF,XF -ests exact,actual \
//	      -j 8 -cache-dir .sweepcache -journal run.jsonl -o study.csv
//
// Cells fan out across -j workers (default: one per CPU; -j 1 forces the
// legacy serial path); record order is byte-identical either way. With
// -cache-dir, finished cells are content-addressed on disk so a repeated
// sweep is near-instant; with -journal, every cell start/finish and the
// end-of-run summary are appended as JSON Lines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	var (
		models   = flag.String("models", "CTC", "comma-separated trace models (CTC, SDSC)")
		jobs     = flag.Int("jobs", 3000, "jobs per workload")
		seed     = flag.Int64("seed", 42, "random seed")
		baseLoad = flag.Float64("base-load", 0.6, "offered load the base workloads are generated at")
		loads    = flag.String("loads", "", "comma-separated target loads (empty: as generated)")
		scheds   = flag.String("scheds", "conservative,easy", "comma-separated scheduler kinds")
		policies = flag.String("policies", "FCFS,SJF,XF", "comma-separated priority policies")
		ests     = flag.String("ests", "exact", "comma-separated estimate models")
		out      = flag.String("o", "", "output CSV file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress per-cell progress and the run summary on stderr")
		workers  = flag.Int("j", runtime.NumCPU(), "parallel workers (1 = legacy serial path)")
		cacheDir = flag.String("cache-dir", "", "content-addressed result cache directory (empty: no cache)")
		journal  = flag.String("journal", "", "append a JSONL run journal to this file")
		auditOn  = flag.Bool("audit", true, "run every cell under the invariant auditor; any violation fails the sweep")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (post-GC) to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := prof.StartCPU(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeap(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
			}
		}()
	}

	design := sweep.Design{
		Schedulers: splitList(*scheds),
		Policies:   splitList(*policies),
		Estimates:  splitList(*ests),
		Seed:       *seed,
	}
	for _, name := range splitList(*models) {
		m, err := workload.ByName(name, *baseLoad)
		if err != nil {
			fatal(err)
		}
		js, err := m.Generate(*jobs, *seed)
		if err != nil {
			fatal(err)
		}
		design.Workloads = append(design.Workloads, sweep.Workload{
			Name: m.Name, Jobs: js, Procs: m.Procs, BaseLoad: *baseLoad,
		})
	}
	if *loads != "" {
		for _, s := range splitList(*loads) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				fatal(fmt.Errorf("bad load %q: %w", s, err))
			}
			design.Loads = append(design.Loads, v)
		}
	}

	opt := sweep.Options{Workers: *workers, NoAudit: !*auditOn}
	if !*quiet {
		opt.Progress = os.Stderr
		opt.ShowETA = true
	}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir, sweep.CacheSalt)
		if err != nil {
			fatal(err)
		}
		opt.Cache = cache
	}
	var journalW io.Writer
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		journalW = f
	}
	// Always keep a journal, even writer-less: it carries the run summary.
	j := runner.NewJournal(journalW)
	opt.Journal = j

	recs, err := sweep.RunWith(context.Background(), design, opt)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "sweep:", j.Summary())
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := sweep.WriteCSV(w, recs); err != nil {
		fatal(err)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
