package main

import "testing"

func TestParseWindow(t *testing.T) {
	cases := []struct {
		in       string
		from, to int64
		ok       bool
	}{
		{"100:200", 100, 200, true},
		{":200", 0, 200, true},
		{"100:", 100, 1<<63 - 1, true},
		{"200:100", 0, 0, false},
		{"abc:200", 0, 0, false},
		{"100", 0, 0, false},
		{"100:xyz", 0, 0, false},
		{"100:100", 0, 0, false},
	}
	for _, tc := range cases {
		from, to, err := parseWindow(tc.in)
		if tc.ok && err != nil {
			t.Errorf("parseWindow(%q): %v", tc.in, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("parseWindow(%q): want error", tc.in)
			}
			continue
		}
		if from != tc.from || to != tc.to {
			t.Errorf("parseWindow(%q) = (%d,%d), want (%d,%d)", tc.in, from, to, tc.from, tc.to)
		}
	}
}
