// Command swfcat reads a workload trace (SWF, optionally gzipped), applies
// transforms, and writes the result as SWF — the trace-preparation step
// before feeding real logs to the simulator. Transformation is lossless
// for the fields the simulator does not model: status, queue, memory and
// the other raw SWF columns pass through untouched.
//
//	swfcat -scale 0.7 ctc.swf.gz > ctc-high.swf        # shrink gaps: raise load
//	swfcat -max-width 128 -renumber big.swf > small.swf
//	swfcat -window 86400:172800 -est R=2 trace.swf > day2-padded.swf
//	swfcat -head 5000 trace.swf > first5000.swf
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/job"
	"repro/internal/swf"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1, "multiply inter-arrival gaps by this factor (<1 raises load)")
		maxWidth = flag.Int("max-width", 0, "drop jobs wider than this (0: keep all)")
		window   = flag.String("window", "", "keep jobs arriving in [from:to) seconds, e.g. 86400:172800")
		head     = flag.Int("head", 0, "keep only the first N jobs (0: keep all)")
		renumber = flag.Bool("renumber", false, "renumber IDs 1..n and shift arrivals to start at 0")
		est      = flag.String("est", "keep", "rewrite estimates: keep, exact, actual, or R=<factor>")
		seed     = flag.Int64("seed", 42, "seed for stochastic estimate models")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: swfcat [flags] <file.swf | file.swf.gz | ->")
		os.Exit(2)
	}

	raw, err := read(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	// Derive the simulator's view, remembering each job's source record.
	recordByID := map[int]swf.Record{}
	var jobs []*job.Job
	dropped := raw.Skipped
	for _, rec := range raw.Records {
		j, err := rec.Job()
		if err != nil || j == nil {
			dropped++
			continue
		}
		if _, dup := recordByID[j.ID]; dup {
			dropped++ // duplicate job numbers cannot be tracked losslessly
			continue
		}
		recordByID[j.ID] = rec
		jobs = append(jobs, j)
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "swfcat: dropped %d unusable/duplicate records\n", dropped)
	}

	// Transforms that preserve job identity.
	if *window != "" {
		from, to, err := parseWindow(*window)
		if err != nil {
			fatal(err)
		}
		jobs = trace.Window(jobs, from, to)
	}
	if *maxWidth > 0 {
		jobs = trace.FilterWidth(jobs, *maxWidth)
	}
	if *head > 0 && *head < len(jobs) {
		jobs = job.CloneAll(jobs[:*head])
	}
	if *scale != 1 {
		jobs, err = trace.ScaleLoad(jobs, *scale)
		if err != nil {
			fatal(err)
		}
	}
	em, err := workload.EstimateModelByName(*est)
	if err != nil {
		fatal(err)
	}
	jobs = workload.ApplyEstimates(jobs, em, *seed)

	// Write the scheduler-relevant fields back into the source records,
	// keeping every other column intact. Renumbering happens here so job
	// identity survives the transforms above.
	outTrace := &swf.RawTrace{Header: map[string]string{}}
	for k, v := range raw.Header {
		outTrace.Header[k] = v
	}
	base := int64(0)
	if *renumber && len(jobs) > 0 {
		base = jobs[0].Arrival
		for _, j := range jobs {
			if j.Arrival < base {
				base = j.Arrival
			}
		}
	}
	for i, j := range jobs {
		rec := recordByID[j.ID]
		if *renumber {
			j = j.Clone()
			j.ID = i + 1
			j.Arrival -= base
		}
		rec.ApplyJob(j)
		outTrace.Records = append(outTrace.Records, rec)
	}

	if *maxWidth > 0 {
		outTrace.Header["MaxProcs"] = strconv.Itoa(*maxWidth)
	}
	outTrace.Header["Note"] = fmt.Sprintf("transformed by swfcat: scale=%g max-width=%d window=%q head=%d renumber=%v est=%s",
		*scale, *maxWidth, *window, *head, *renumber, em.Name())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := swf.WriteRecords(w, outTrace); err != nil {
		fatal(err)
	}
}

func read(name string) (*swf.RawTrace, error) {
	var src *os.File
	if name == "-" {
		src = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	r, err := swf.NewReader(src)
	if err != nil {
		return nil, err
	}
	return swf.ParseRecords(r, false)
}

// parseWindow parses "from:to" (seconds); either side may be empty for an
// open end.
func parseWindow(s string) (int64, int64, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad -window %q (want from:to)", s)
	}
	from, to := int64(0), int64(math.MaxInt64)
	var err error
	if parts[0] != "" {
		if from, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad -window from: %w", err)
		}
	}
	if parts[1] != "" {
		if to, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad -window to: %w", err)
		}
	}
	if to <= from {
		return 0, 0, fmt.Errorf("bad -window %q: to must exceed from", s)
	}
	return from, to, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swfcat:", err)
	os.Exit(1)
}
