package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleSWF is a tiny two-job trace: job 1 is short/narrow (SN), job 2 is
// long/wide on a 16-proc machine declared in the header.
const sampleSWF = `; MaxProcs: 16
; UnixStartTime: 0
1 0 10 100 4 -1 -1 4 200 -1 1 1 -1 -1 -1 -1 -1 -1
2 50 0 40000 16 -1 -1 16 50000 -1 1 2 -1 -1 -1 -1 -1 -1
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.swf")
	if err := os.WriteFile(path, []byte(sampleSWF), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{writeSample(t)}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"jobs             2 (skipped 0 records)",
		"machine          16 processors",
		"category distribution",
		"estimate quality",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-"}, strings.NewReader(sampleSWF), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "jobs             2") {
		t.Errorf("stdin run missing job count:\n%s", out.String())
	}
}

func TestRunProcsOverride(t *testing.T) {
	var withHeader, with32 bytes.Buffer
	path := writeSample(t)
	if err := run([]string{path}, nil, &withHeader); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-procs", "32", path}, nil, &with32); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with32.String(), "machine          32 processors") {
		t.Errorf("-procs 32 not applied:\n%s", with32.String())
	}
	if withHeader.String() == with32.String() {
		t.Error("machine override did not change the offered-load summary")
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                   // missing file argument
		{"a.swf", "b.swf"},   // too many arguments
		{"/nonexistent.swf"}, // unreadable file
		{"-procs", "x", "-"}, // bad flag value
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
