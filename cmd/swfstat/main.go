// Command swfstat summarises a workload trace: job counts, category mix
// (the paper's Tables 2–3 view), estimate quality, offered load.
//
//	swfstat trace.swf
//	wgen -model SDSC -jobs 5000 -est actual | swfstat -procs 128 -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/job"
	"repro/internal/swf"
	"repro/internal/trace"
)

func main() {
	procs := flag.Int("procs", 0, "machine size override for offered load")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: swfstat [-procs N] <file.swf | ->")
		os.Exit(2)
	}

	var r io.Reader
	name := flag.Arg(0)
	if name == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	rr, err := swf.NewReader(r)
	if err != nil {
		fatal(err)
	}
	tr, err := swf.Parse(rr, swf.Options{})
	if err != nil {
		fatal(err)
	}
	machine := tr.MaxProcs
	if *procs > 0 {
		machine = *procs
	}

	th := job.PaperThresholds()
	s := trace.Summarize(tr.Jobs, th)
	fmt.Printf("jobs             %d (skipped %d records)\n", s.Jobs, tr.Skipped)
	fmt.Printf("machine          %d processors\n", machine)
	fmt.Printf("span             %d s\n", s.Span)
	fmt.Printf("offered load     %.3f\n", trace.OfferedLoad(tr.Jobs, machine))
	fmt.Printf("mean runtime     %.0f s\n", s.MeanRuntime)
	fmt.Printf("mean width       %.1f procs\n", s.MeanWidth)
	fmt.Printf("mean est/runtime %.2f\n\n", s.MeanOverestimate)

	fmt.Printf("category distribution (runtime %ds × width %d):\n", th.MaxShortRuntime, th.MaxNarrowWidth)
	for _, c := range job.Categories() {
		fmt.Printf("  %-3s %7d  %6.2f%%\n", c.String(), s.CategoryCounts[c], 100*s.Mix[c])
	}
	fmt.Printf("\nestimate quality (well = estimate <= 2x runtime):\n")
	total := s.WellEstimated + s.PoorlyEstimated
	if total > 0 {
		fmt.Printf("  well    %7d  %6.2f%%\n", s.WellEstimated, 100*float64(s.WellEstimated)/float64(total))
		fmt.Printf("  poorly  %7d  %6.2f%%\n", s.PoorlyEstimated, 100*float64(s.PoorlyEstimated)/float64(total))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "swfstat:", err)
	os.Exit(1)
}
