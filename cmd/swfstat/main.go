// Command swfstat summarises a workload trace: job counts, category mix
// (the paper's Tables 2–3 view), estimate quality, offered load.
//
//	swfstat trace.swf
//	wgen -model SDSC -jobs 5000 -est actual | swfstat -procs 128 -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/job"
	"repro/internal/swf"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "swfstat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("swfstat", flag.ContinueOnError)
	fs.SetOutput(out)
	procs := fs.Int("procs", 0, "machine size override for offered load")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: swfstat [-procs N] <file.swf | ->")
	}

	var r io.Reader
	name := fs.Arg(0)
	if name == "-" {
		r = stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	rr, err := swf.NewReader(r)
	if err != nil {
		return err
	}
	tr, err := swf.Parse(rr, swf.Options{})
	if err != nil {
		return err
	}
	machine := tr.MaxProcs
	if *procs > 0 {
		machine = *procs
	}

	th := job.PaperThresholds()
	s := trace.Summarize(tr.Jobs, th)
	fmt.Fprintf(out, "jobs             %d (skipped %d records)\n", s.Jobs, tr.Skipped)
	fmt.Fprintf(out, "machine          %d processors\n", machine)
	fmt.Fprintf(out, "span             %d s\n", s.Span)
	fmt.Fprintf(out, "offered load     %.3f\n", trace.OfferedLoad(tr.Jobs, machine))
	fmt.Fprintf(out, "mean runtime     %.0f s\n", s.MeanRuntime)
	fmt.Fprintf(out, "mean width       %.1f procs\n", s.MeanWidth)
	fmt.Fprintf(out, "mean est/runtime %.2f\n\n", s.MeanOverestimate)

	fmt.Fprintf(out, "category distribution (runtime %ds × width %d):\n", th.MaxShortRuntime, th.MaxNarrowWidth)
	for _, c := range job.Categories() {
		fmt.Fprintf(out, "  %-3s %7d  %6.2f%%\n", c.String(), s.CategoryCounts[c], 100*s.Mix[c])
	}
	fmt.Fprintf(out, "\nestimate quality (well = estimate <= 2x runtime):\n")
	total := s.WellEstimated + s.PoorlyEstimated
	if total > 0 {
		fmt.Fprintf(out, "  well    %7d  %6.2f%%\n", s.WellEstimated, 100*float64(s.WellEstimated)/float64(total))
		fmt.Fprintf(out, "  poorly  %7d  %6.2f%%\n", s.PoorlyEstimated, 100*float64(s.PoorlyEstimated)/float64(total))
	}
	return nil
}
