package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// boot starts run() on a free port and returns the base URL plus a stop
// function that cancels the daemon and returns its exit error.
func boot(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out, ready)
	}()
	var url string
	select {
	case url = <-ready:
	case err := <-errc:
		cancel()
		t.Fatalf("daemon exited before ready: %v\noutput:\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return url, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit after cancel")
			return nil
		}
	}
}

func getJSONinto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestDaemonSubmitAndDrain(t *testing.T) {
	// A nearly-frozen clock keeps the submitted job running until drain.
	url, stop := boot(t, "-procs", "8", "-sched", "easy", "-speed", "1e-9")

	var health struct {
		Status  string `json:"status"`
		Pending int    `json:"pending"`
	}
	getJSONinto(t, url+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz status = %q, want ok", health.Status)
	}

	body := strings.NewReader(`{"width": 4, "runtime": 100}`)
	resp, err := http.Post(url+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var jv struct {
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	if jv.State != "running" {
		t.Fatalf("job state = %q, want running (empty 8-proc machine)", jv.State)
	}

	// SIGTERM-equivalent: cancelling the context must drain the in-flight
	// job and exit clean.
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDaemonSyntheticReplay(t *testing.T) {
	url, stop := boot(t,
		"-procs", "128", "-model", "SDSC", "-jobs", "40", "-seed", "7",
		"-sched", "conservative", "-policy", "SJF", "-speed", "-1")

	// As-fast-as-possible replay: the whole preloaded trace should finish
	// promptly; poll until the event queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Pending int `json:"pending"`
		}
		getJSONinto(t, url+"/healthz", &health)
		if health.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay never finished: %d events pending", health.Pending)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var q struct {
		Completed int64 `json:"completed"`
	}
	getJSONinto(t, url+"/v1/queue", &q)
	if q.Completed != 40 {
		t.Fatalf("completed = %d, want 40", q.Completed)
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"schedd_jobs_submitted_total 40",
		"schedd_jobs_completed_total 40",
		"schedd_audit_violations 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	durable := []string{"-procs", "8", "-sched", "easy", "-speed", "1e-9", "-data-dir", dir}
	url, stop := boot(t, durable...)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(url+"/v1/jobs", "application/json",
			strings.NewReader(`{"width": 2, "runtime": 100}`))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
		}
	}
	var live struct {
		Enabled bool   `json:"enabled"`
		Seq     uint64 `json:"seq"`
	}
	getJSONinto(t, url+"/v1/debug/durability", &live)
	if !live.Enabled || live.Seq == 0 {
		t.Fatalf("live durability info = %+v, want journaling", live)
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Restart on the same journal: the drained run recovers (3 completed
	// jobs) instead of starting empty.
	url2, stop2 := boot(t, durable...)
	var info struct {
		Enabled  bool `json:"enabled"`
		Recovery *struct {
			CheckpointSeq uint64 `json:"checkpoint_seq"`
			CheckpointOps int    `json:"checkpoint_ops"`
		} `json:"recovery"`
	}
	getJSONinto(t, url2+"/v1/debug/durability", &info)
	if !info.Enabled || info.Recovery == nil || info.Recovery.CheckpointOps == 0 {
		t.Fatalf("restart durability info = %+v, want recovery from the parting checkpoint", info)
	}
	var q struct {
		Completed int64 `json:"completed"`
	}
	getJSONinto(t, url2+"/v1/queue", &q)
	if q.Completed != 3 {
		t.Fatalf("recovered queue has %d completed jobs, want 3", q.Completed)
	}
	if err := stop2(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDaemonFederation boots a 3-shard federation and checks the merged
// surface: per-shard rows, summed capacity, globally unique job IDs, and a
// clean drain.
func TestDaemonFederation(t *testing.T) {
	url, stop := boot(t, "-procs", "8", "-sched", "easy", "-speed", "1e-9",
		"-shards", "3", "-route", "width")

	var rows []struct {
		Shard int `json:"shard"`
		Procs int `json:"procs"`
	}
	getJSONinto(t, url+"/v1/shards", &rows)
	if len(rows) != 3 {
		t.Fatalf("got %d shard rows, want 3", len(rows))
	}
	for i, r := range rows {
		if r.Shard != i || r.Procs != 8 {
			t.Fatalf("row %d: %+v", i, r)
		}
	}

	seen := map[int]bool{}
	for i := 0; i < 9; i++ {
		resp, err := http.Post(url+"/v1/jobs", "application/json",
			strings.NewReader(`{"width": 8, "runtime": 100, "user": `+strings.Repeat("1", 1+i%3)+`}`))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		var jv struct {
			ID int `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			t.Fatalf("decode: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
		}
		if seen[jv.ID] {
			t.Fatalf("duplicate job ID %d across shards", jv.ID)
		}
		seen[jv.ID] = true
	}

	var q struct {
		Procs     int   `json:"procs"`
		Submitted int64 `json:"submitted"`
	}
	getJSONinto(t, url+"/v1/queue", &q)
	if q.Procs != 24 || q.Submitted != 9 {
		t.Fatalf("merged queue: procs=%d submitted=%d, want 24/9", q.Procs, q.Submitted)
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDaemonFederationReplay drains a synthetic trace through a 2-shard
// federation at full speed; every preloaded job must complete and the
// merged audit must stay silent.
func TestDaemonFederationReplay(t *testing.T) {
	url, stop := boot(t,
		"-procs", "128", "-model", "SDSC", "-jobs", "40", "-seed", "7",
		"-shards", "2", "-route", "width", "-speed", "-1")

	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Pending int `json:"pending"`
		}
		getJSONinto(t, url+"/healthz", &health)
		if health.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated replay never finished: %d pending", health.Pending)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"schedd_jobs_submitted_total 40",
		"schedd_jobs_completed_total 40",
		"schedd_audit_violations 0",
		"schedd_procs_total 256",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("merged metrics missing %q:\n%s", want, buf.String())
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestDaemonFederationDurableRestart journals a 2-shard federation into
// per-shard directories and restarts on them: both shards must recover and
// the merged state must carry the pre-restart jobs.
func TestDaemonFederationDurableRestart(t *testing.T) {
	dir := t.TempDir()
	fedArgs := []string{"-procs", "8", "-sched", "easy", "-speed", "1e-9",
		"-shards", "2", "-route", "width", "-data-dir", dir}
	url, stop := boot(t, fedArgs...)
	for i := 0; i < 4; i++ {
		resp, err := http.Post(url+"/v1/jobs", "application/json",
			strings.NewReader(`{"width": 2, "runtime": 100}`))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	url2, stop2 := boot(t, fedArgs...)
	var q struct {
		Completed int64 `json:"completed"`
	}
	getJSONinto(t, url2+"/v1/queue", &q)
	if q.Completed != 4 {
		t.Fatalf("recovered federation has %d completed jobs, want 4", q.Completed)
	}
	if err := stop2(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestDaemonFollower boots a durable leader and a follower replica of its
// HTTP endpoint: the follower must catch up, serve the read surface,
// refuse writes with 421, and honor the ?min_seq= read barrier.
func TestDaemonFollower(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-procs", "8", "-sched", "easy", "-speed", "1e-9"}
	leaderURL, stopLeader := boot(t, append(args, "-data-dir", dir)...)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(leaderURL+"/v1/jobs", "application/json",
			strings.NewReader(`{"width": 2, "runtime": 100}`))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
		}
	}

	folURL, stopFol := boot(t, append(args,
		"-follow", leaderURL, "-follower-id", "t1", "-replica-poll", "5ms")...)
	var ri struct {
		Role       string `json:"role"`
		AppliedSeq uint64 `json:"applied_seq"`
		LeaderSeq  uint64 `json:"leader_seq"`
		LagOps     uint64 `json:"lag_ops"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSONinto(t, folURL+"/v1/debug/replication", &ri)
		if ri.AppliedSeq > 0 && ri.LagOps == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", ri)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ri.Role != "follower" {
		t.Fatalf("role = %q, want follower", ri.Role)
	}

	var q struct {
		Submitted int64 `json:"submitted"`
	}
	getJSONinto(t, folURL+"/v1/queue?min_seq="+strconv.FormatUint(ri.AppliedSeq, 10), &q)
	if q.Submitted != 3 {
		t.Fatalf("follower queue: submitted = %d, want 3", q.Submitted)
	}

	resp, err := http.Post(folURL+"/v1/jobs", "application/json",
		strings.NewReader(`{"width": 1, "runtime": 10}`))
	if err != nil {
		t.Fatalf("POST to follower: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("write on follower: status %d, want 421", resp.StatusCode)
	}

	if err := stopFol(); err != nil {
		t.Fatalf("follower stop: %v", err)
	}
	if err := stopLeader(); err != nil {
		t.Fatalf("leader drain: %v", err)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	cases := [][]string{
		{"-sched", "bogus"},
		{"-policy", "bogus"},
		{"-procs", "0"},
		{"-model", "bogus"},
		{"-model", "SDSC", "-procs", "64"}, // calibrated for 128
		{"-swf", "/nonexistent.swf"},
		{"-model", "SDSC", "-procs", "128", "-est", "bogus"},
		{"-shards", "0"},
		{"-shards", "2", "-route", "bogus"},
		{"-shards", "2", "-mailbox-reads"},
		{"-id-start", "0"},
		{"-id-stride", "0"},
		{"-shards", "2", "-id-stride", "2"},
		{"-follow", "http://localhost:1", "-shards", "2"},
		{"-follow", "http://localhost:1", "-mailbox-reads"},
		{"-follow", "http://localhost:1", "-model", "SDSC", "-procs", "128"},
		{"-follow", "http://localhost:1", "-replica-of", "http://localhost:2"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		err := run(context.Background(), args, &out, nil)
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDaemonListenError(t *testing.T) {
	// Grab a port, then ask the daemon to bind the same one.
	url, stop := boot(t, "-procs", "8", "-speed", "-1")
	addr := strings.TrimPrefix(url, "http://")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", addr, "-procs", "8"}, &out, nil)
	if err == nil {
		t.Fatal("second bind on same address succeeded, want error")
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestLoadReplayNone(t *testing.T) {
	js, err := loadReplay("", "", 10, 1, 0.85, "keep", 128)
	if err != nil || js != nil {
		t.Fatalf("loadReplay with no source = (%v, %v), want (nil, nil)", js, err)
	}
}

func TestDaemonUsage(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-h"}, &out, nil)
	if err == nil {
		t.Fatal("-h returned nil error")
	}
	if !strings.Contains(out.String(), "-procs") {
		t.Errorf("usage output missing flag docs:\n%s", out.String())
	}
}
