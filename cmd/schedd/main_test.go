package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// boot starts run() on a free port and returns the base URL plus a stop
// function that cancels the daemon and returns its exit error.
func boot(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out, ready)
	}()
	var url string
	select {
	case url = <-ready:
	case err := <-errc:
		cancel()
		t.Fatalf("daemon exited before ready: %v\noutput:\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return url, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not exit after cancel")
			return nil
		}
	}
}

func getJSONinto(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func TestDaemonSubmitAndDrain(t *testing.T) {
	// A nearly-frozen clock keeps the submitted job running until drain.
	url, stop := boot(t, "-procs", "8", "-sched", "easy", "-speed", "1e-9")

	var health struct {
		Status  string `json:"status"`
		Pending int    `json:"pending"`
	}
	getJSONinto(t, url+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz status = %q, want ok", health.Status)
	}

	body := strings.NewReader(`{"width": 4, "runtime": 100}`)
	resp, err := http.Post(url+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var jv struct {
		ID    int    `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	if jv.State != "running" {
		t.Fatalf("job state = %q, want running (empty 8-proc machine)", jv.State)
	}

	// SIGTERM-equivalent: cancelling the context must drain the in-flight
	// job and exit clean.
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDaemonSyntheticReplay(t *testing.T) {
	url, stop := boot(t,
		"-procs", "128", "-model", "SDSC", "-jobs", "40", "-seed", "7",
		"-sched", "conservative", "-policy", "SJF", "-speed", "-1")

	// As-fast-as-possible replay: the whole preloaded trace should finish
	// promptly; poll until the event queue is empty.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Pending int `json:"pending"`
		}
		getJSONinto(t, url+"/healthz", &health)
		if health.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay never finished: %d events pending", health.Pending)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var q struct {
		Completed int64 `json:"completed"`
	}
	getJSONinto(t, url+"/v1/queue", &q)
	if q.Completed != 40 {
		t.Fatalf("completed = %d, want 40", q.Completed)
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"schedd_jobs_submitted_total 40",
		"schedd_jobs_completed_total 40",
		"schedd_audit_violations 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	durable := []string{"-procs", "8", "-sched", "easy", "-speed", "1e-9", "-data-dir", dir}
	url, stop := boot(t, durable...)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(url+"/v1/jobs", "application/json",
			strings.NewReader(`{"width": 2, "runtime": 100}`))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
		}
	}
	var live struct {
		Enabled bool   `json:"enabled"`
		Seq     uint64 `json:"seq"`
	}
	getJSONinto(t, url+"/v1/debug/durability", &live)
	if !live.Enabled || live.Seq == 0 {
		t.Fatalf("live durability info = %+v, want journaling", live)
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Restart on the same journal: the drained run recovers (3 completed
	// jobs) instead of starting empty.
	url2, stop2 := boot(t, durable...)
	var info struct {
		Enabled  bool `json:"enabled"`
		Recovery *struct {
			CheckpointSeq uint64 `json:"checkpoint_seq"`
			CheckpointOps int    `json:"checkpoint_ops"`
		} `json:"recovery"`
	}
	getJSONinto(t, url2+"/v1/debug/durability", &info)
	if !info.Enabled || info.Recovery == nil || info.Recovery.CheckpointOps == 0 {
		t.Fatalf("restart durability info = %+v, want recovery from the parting checkpoint", info)
	}
	var q struct {
		Completed int64 `json:"completed"`
	}
	getJSONinto(t, url2+"/v1/queue", &q)
	if q.Completed != 3 {
		t.Fatalf("recovered queue has %d completed jobs, want 3", q.Completed)
	}
	if err := stop2(); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	cases := [][]string{
		{"-sched", "bogus"},
		{"-policy", "bogus"},
		{"-procs", "0"},
		{"-model", "bogus"},
		{"-model", "SDSC", "-procs", "64"}, // calibrated for 128
		{"-swf", "/nonexistent.swf"},
		{"-model", "SDSC", "-procs", "128", "-est", "bogus"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		err := run(context.Background(), args, &out, nil)
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDaemonListenError(t *testing.T) {
	// Grab a port, then ask the daemon to bind the same one.
	url, stop := boot(t, "-procs", "8", "-speed", "-1")
	addr := strings.TrimPrefix(url, "http://")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", addr, "-procs", "8"}, &out, nil)
	if err == nil {
		t.Fatal("second bind on same address succeeded, want error")
	}
	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestLoadReplayNone(t *testing.T) {
	js, err := loadReplay("", "", 10, 1, 0.85, "keep", 128)
	if err != nil || js != nil {
		t.Fatalf("loadReplay with no source = (%v, %v), want (nil, nil)", js, err)
	}
}

func TestDaemonUsage(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(), []string{"-h"}, &out, nil)
	if err == nil {
		t.Fatal("-h returned nil error")
	}
	if !strings.Contains(out.String(), "-procs") {
		t.Errorf("usage output missing flag docs:\n%s", out.String())
	}
}
