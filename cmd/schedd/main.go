// Command schedd runs the backfilling simulator as an online scheduling
// service: a daemon owning one incremental simulation session, an HTTP/JSON
// API for submitting, cancelling and querying jobs (with start-time
// forecasts), and Prometheus metrics. Virtual time runs in real time, at an
// N× acceleration, or as fast as possible.
//
//	schedd -procs 128 -sched easy -policy SJF -addr 127.0.0.1:8080
//	schedd -procs 430 -sched conservative -swf trace.swf -speed 60
//	schedd -procs 128 -model SDSC -jobs 2000 -speed 0   # replay flat out
//	schedd -procs 128 -data-dir /var/lib/schedd        # durable daemon
//	schedd -procs 128 -shards 4 -route width           # 4-cluster federation
//
// With -shards N > 1 the daemon becomes a federation front end: N
// independent cluster shards of -procs processors each behind the same
// HTTP surface, submissions routed by -route (consistent hashing by user,
// or width-aware least-loaded placement), queue listings and metrics
// scatter-gathered from the shards' lock-free snapshots. With -data-dir
// each shard journals into its own shard-NNN subdirectory and recovers
// independently at boot.
//
// With -data-dir every accepted mutation is journaled to a write-ahead log
// before it is acknowledged, and a restart recovers the exact pre-crash
// state (newest checkpoint plus journal tail; see internal/wal). -fsync
// extends the guarantee from process crashes to machine crashes at the
// cost of one sync per commit batch.
//
// With -follow the daemon runs as a read replica of another schedd (see
// internal/replica); with -ack-quorum K a durable leader additionally
// holds each write until K followers have acked it, and with
// -read-route replica the front end spreads reads across the registered
// followers (see internal/fed and OPERATIONS.md for topology recipes).
//
// SIGINT/SIGTERM drain gracefully: admissions stop, the remaining schedule
// fast-forwards to completion, and the exit status reflects whether the
// audited run finished clean.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fed"
	"repro/internal/job"
	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/swf"
	"repro/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// run builds the server from args and serves until ctx is cancelled. When
// ready is non-nil, the listen URL is sent on it once the API is up (tests
// and the smoke script use this instead of parsing logs).
func run(ctx context.Context, args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 picks a free port)")
		procs    = fs.Int("procs", 128, "machine size in processors")
		kind     = fs.String("sched", "easy", "scheduler kind (see sched.MakerFor)")
		policy   = fs.String("policy", "FCFS", "queue priority policy: FCFS, SJF, XF, LJF, WFP")
		audit    = fs.Bool("audit", true, "wrap the live session in the invariant auditor")
		speed    = fs.Float64("speed", 1, "virtual seconds per wall second; 0 runs as fast as possible")
		swfPath  = fs.String("swf", "", "preload and replay this SWF trace")
		model    = fs.String("model", "", "preload a synthetic workload: CTC or SDSC")
		jobs     = fs.Int("jobs", 1000, "synthetic replay length in jobs")
		load     = fs.Float64("load", 0.85, "offered load for synthetic replay")
		seed     = fs.Int64("seed", 42, "random seed for synthetic replay")
		est      = fs.String("est", "actual", "estimate model for synthetic replay: keep, exact, actual, R=<f>")
		pprofOn  = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiles a live daemon; see PERFORMANCE.md)")
		mboxRd   = fs.Bool("mailbox-reads", false, "serve GETs through the scheduler mailbox instead of the lock-free snapshot path (A/B baseline for cmd/schedload)")
		dataDir  = fs.String("data-dir", "", "write-ahead journal directory; empty runs in-memory only. An existing journal is recovered at boot")
		ckptInt  = fs.Duration("checkpoint-interval", time.Minute, "checkpoint at least this often while the journal grows")
		ckptOps  = fs.Int("checkpoint-ops", 4096, "checkpoint after this many journal records past the previous checkpoint")
		fsyncOn  = fs.Bool("fsync", false, "fsync the journal once per commit batch; off survives process crashes (SIGKILL), on also survives machine crashes")
		shards   = fs.Int("shards", 1, "cluster shard count; >1 runs a federation of independent shards of -procs processors each")
		route    = fs.String("route", "hash", "federation routing policy: hash (consistent hashing by user) or width (width-aware least-loaded)")
		idStart  = fs.Int("id-start", 1, "first job ID this daemon assigns (process-per-shard federations give each member its own congruence class)")
		idStride = fs.Int("id-stride", 1, "job ID increment; with -id-start i and -id-stride N the daemon only ever assigns IDs ≡ i (mod N)")
		follow   = fs.String("follow", "", "run as a read replica of this leader: its base URL (or a federation shard's .../v1/shards/N), or its journal directory on shared storage")
		replOf   = fs.String("replica-of", "", "alias for -follow")
		replID   = fs.String("follower-id", "", "follower name in the leader's registry (pins the journal retention floor); defaults to follower-<pid>")
		replPoll = fs.Duration("replica-poll", 25*time.Millisecond, "replication pull interval")
		replWait = fs.Duration("replica-wait", 0, "long-poll duration for caught-up replication pulls; 0 polls at -replica-poll only. Long polls cut ack latency, which is what -ack-quorum waits on")
		advert   = fs.String("advertise", "auto", "read URL this follower registers with its leader for replica-routed reads; \"auto\" advertises the listen address, \"none\" (or empty) registers no read address")
		promAft  = fs.Int("promote-after", 0, "self-promote to leader after this many consecutive failed leader health probes; 0 never promotes automatically")
		leadURL  = fs.String("leader-health", "", "leader liveness probe base URL for -promote-after (defaults to -follow when it is an HTTP URL)")
		ackQ     = fs.Int("ack-quorum", 0, "hold each write until this many TTL-live followers have durably acked its batch; 0 acks on leader durability alone")
		ackQTo   = fs.Duration("ack-quorum-timeout", 2*time.Second, "how long a write waits for the -ack-quorum before degrading or failing")
		ackQDeg  = fs.Bool("ack-quorum-degrade", false, "on quorum timeout, ack on leader durability alone (counted in /v1/debug/replication) instead of failing the write with 503")
		readRt   = fs.String("read-route", "leader", "read-routing policy: leader (serve reads locally) or replica (spread reads across registered followers; implies the federation front end even at -shards 1)")
		maxLag   = fs.Uint64("max-lag-ops", 0, "replica routing staleness bound: followers more than this many journal records behind are ejected from read rotation; 0 means the built-in default")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, have %d", *shards)
	}

	if *idStart < 1 || *idStride < 1 {
		return fmt.Errorf("-id-start and -id-stride must be at least 1")
	}
	if *shards > 1 && (*idStart != 1 || *idStride != 1) {
		return fmt.Errorf("-id-start/-id-stride are for process-per-shard members; an in-process federation (-shards) assigns congruence classes itself")
	}

	so := serve.Options{
		Procs:        *procs,
		Scheduler:    *kind,
		Policy:       *policy,
		Audit:        *audit,
		Speed:        *speed,
		Debug:        *pprofOn,
		MailboxReads: *mboxRd,
		IDStart:      *idStart,
		IDStride:     *idStride,
		Durability: serve.DurabilityOptions{
			Fsync:           *fsyncOn,
			CheckpointEvery: *ckptInt,
			CheckpointOps:   *ckptOps,
			AckQuorum:       *ackQ,
			QuorumTimeout:   *ackQTo,
			QuorumDegrade:   *ackQDeg,
		},
	}
	switch *readRt {
	case "leader", "replica":
	default:
		return fmt.Errorf("-read-route must be leader or replica, have %q", *readRt)
	}
	routed := *readRt == "replica"

	// svc is the daemon behind the HTTP listener: a single serve.Server, a
	// federation front end over -shards of them, or a follower replica.
	var svc service
	if *replOf != "" {
		if *follow != "" && *follow != *replOf {
			return fmt.Errorf("-follow and -replica-of name different leaders (%q vs %q)", *follow, *replOf)
		}
		*follow = *replOf
	}

	recovered := false
	if *follow != "" {
		if *shards > 1 {
			return fmt.Errorf("-follow replicates one leader; run one follower per federation shard against /v1/shards/N/wal instead of combining with -shards")
		}
		if *mboxRd {
			return fmt.Errorf("-mailbox-reads is a single-daemon A/B baseline and cannot combine with -follow")
		}
		if *swfPath != "" || *model != "" {
			return fmt.Errorf("a follower's workload comes from its leader; drop -swf/-model")
		}
		if routed {
			return fmt.Errorf("-read-route is a front-end (leader-side) policy; a follower serves its own reads")
		}
		id := *replID
		if id == "" {
			id = fmt.Sprintf("follower-%d", os.Getpid())
		}
		// Listen before building the replica so "-advertise auto" can
		// register the real listen address (which :0 only yields here).
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		url := "http://" + ln.Addr().String()
		adv := *advert
		switch adv {
		case "auto":
			adv = url
		case "none":
			adv = ""
		}
		rep, err := replica.New(replica.Options{
			Source:      *follow,
			Serve:       so,
			ID:          id,
			Advertise:   adv,
			Wait:        *replWait,
			PromoteDir:  *dataDir,
			Fsync:       *fsyncOn,
			Poll:        *replPoll,
			HealthURL:   *leadURL,
			AutoPromote: *promAft,
		})
		if err != nil {
			ln.Close()
			return err
		}
		svc = rep
		defer svc.Close()

		fmt.Fprintf(out, "schedd: %s(%s) on %d procs, following %s, listening on %s\n",
			*kind, *policy, *procs, *follow, url)
		if ready != nil {
			ready <- url
		}
		return serveLoop(ctx, out, ln, svc)
	}
	if *shards > 1 || routed {
		if *mboxRd {
			return fmt.Errorf("-mailbox-reads is a single-daemon A/B baseline and cannot combine with -shards or -read-route replica")
		}
		f, err := fed.New(fed.Options{Shards: *shards, Route: *route, Shard: so, DataDir: *dataDir,
			ReadRoute: *readRt, MaxLagOps: *maxLag})
		if err != nil {
			return err
		}
		svc = f
		for i, sh := range f.Shards() {
			ri := sh.Recovery()
			if ri == nil || !ri.Replayed() {
				continue
			}
			recovered = true
			fmt.Fprintf(out, "schedd: shard %d recovered %s: checkpoint seq %d (%d ops) + %d journal records",
				i, fed.ShardDir(*dataDir, i), ri.CheckpointSeq, ri.CheckpointOps, ri.TailRecords)
			if ri.TruncatedBytes > 0 {
				fmt.Fprintf(out, ", truncated %d bytes of torn tail", ri.TruncatedBytes)
			}
			fmt.Fprintln(out)
			for _, w := range ri.Warnings {
				fmt.Fprintf(out, "schedd: shard %d recovery warning: %s\n", i, w)
			}
		}
	} else {
		so.Durability.Dir = *dataDir
		srv, err := serve.New(so)
		if err != nil {
			return err
		}
		svc = srv
		if ri := srv.Recovery(); ri != nil && ri.Replayed() {
			recovered = true
			fmt.Fprintf(out, "schedd: recovered %s: checkpoint seq %d (%d ops) + %d journal records",
				*dataDir, ri.CheckpointSeq, ri.CheckpointOps, ri.TailRecords)
			if ri.TruncatedBytes > 0 {
				fmt.Fprintf(out, ", truncated %d bytes of torn tail", ri.TruncatedBytes)
			}
			fmt.Fprintln(out)
			for _, w := range ri.Warnings {
				fmt.Fprintf(out, "schedd: recovery warning: %s\n", w)
			}
		}
	}
	defer svc.Close()

	if recovered {
		// The journals already hold this daemon's history (including any
		// preload from its first boot); preloading again would double the
		// workload.
		if *swfPath != "" || *model != "" {
			fmt.Fprintln(out, "schedd: journal recovered, skipping -swf/-model preload")
		}
	} else {
		replay, err := loadReplay(*swfPath, *model, *jobs, *seed, *load, *est, *procs)
		if err != nil {
			return err
		}
		if len(replay) > 0 {
			if err := svc.Preload(replay); err != nil {
				return err
			}
			fmt.Fprintf(out, "schedd: preloaded %d jobs for replay\n", len(replay))
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	url := "http://" + ln.Addr().String()
	routeNote := ""
	if routed {
		routeNote = ", read-route replica"
	}
	if *shards > 1 {
		fmt.Fprintf(out, "schedd: %d×%s(%s) shards, %d procs each (%d total), route %s%s, speed %g, listening on %s\n",
			*shards, *kind, *policy, *procs, *shards**procs, *route, routeNote, *speed, url)
	} else {
		fmt.Fprintf(out, "schedd: %s(%s) on %d procs%s, speed %g, listening on %s\n",
			*kind, *policy, *procs, routeNote, *speed, url)
	}
	if ready != nil {
		ready <- url
	}
	return serveLoop(ctx, out, ln, svc)
}

// service is the daemon behind the HTTP listener, whichever shape it takes.
type service interface {
	Preload([]*job.Job) error
	Run(context.Context) error
	Close() error
	Handler() http.Handler
}

// serveLoop runs the HTTP listener and the scheduler (or replication) loop
// until ctx is cancelled, then shuts both down.
func serveLoop(ctx context.Context, out io.Writer, ln net.Listener, svc service) error {
	hs := &http.Server{Handler: svc.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(ln) }()

	runErr := make(chan error, 1)
	go func() { runErr <- svc.Run(ctx) }()

	var firstErr error
	select {
	case err := <-httpErr:
		// Listener died under us; bring the scheduler down too.
		firstErr = err
		<-ctx.Done()
		<-runErr
	case err := <-runErr:
		// Normal path: signal received, scheduler drained.
		firstErr = err
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr == nil {
		fmt.Fprintln(out, "schedd: drained clean")
	}
	return firstErr
}

// loadReplay builds the optional preloaded workload: an SWF trace, or a
// synthetic model with rewritten estimates.
func loadReplay(swfPath, model string, jobs int, seed int64, load float64, est string, procs int) ([]*job.Job, error) {
	switch {
	case swfPath != "":
		tr, err := swf.Open(swfPath, swf.Options{MaxJobs: jobs})
		if err != nil {
			return nil, err
		}
		return tr.Jobs, nil
	case model != "":
		m, err := workload.ByName(model, load)
		if err != nil {
			return nil, err
		}
		if m.Procs != procs {
			return nil, fmt.Errorf("model %s is calibrated for %d procs, daemon has %d (pass -procs %d)",
				model, m.Procs, procs, m.Procs)
		}
		js, err := m.Generate(jobs, seed)
		if err != nil {
			return nil, err
		}
		em, err := workload.EstimateModelByName(est)
		if err != nil {
			return nil, err
		}
		return workload.ApplyEstimates(js, em, seed+1), nil
	default:
		return nil, nil
	}
}
