package main

// Replica modes: the read-scaling benchmark and the failover drill.
//
// The benchmark (-replicas N) spawns a real leader schedd with a journal
// plus N follower schedds tailing that journal directory, every process
// pinned to one CPU (GOMAXPROCS=1) so "another replica" genuinely means
// "another core's worth of read capacity" rather than more goroutines on
// the same scheduler. Each serving process is then measured at full tilt
// in its own phase — all readers at the leader, then all readers at each
// follower in turn, with the writer stream and replication live the whole
// time — and the report sums the phases into an aggregate read capacity.
// Sequential phases rather than concurrent round-robin because the
// reference machine is single-core: N+1 processes sharing one core can
// never show a speedup no matter how well replication works, while
// per-process capacity × N+1 is exactly what N+1 cores realize (each
// process is pinned to one core's worth of CPU). The scaling factor in
// BENCH_PR8.json is aggregate over the leader-alone phase; -replicas 0
// is that single-daemon baseline run standalone.
//
// The drill (-promote) is the failover analogue of -kill: burst
// acknowledged writes at the leader, SIGKILL it, and require its follower
// to self-promote (health probes against the dead leader) and come up as a
// leader holding every acknowledged write — proven the same way -kill
// proves recovery, by hash equality between the promoted daemon and an
// in-process shadow replay of the journal. The promoted daemon then serves
// as leader for the next cycle, with a fresh follower behind it, so each
// cycle also proves promotion of promoted state.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"
)

// replStatus is the wire form of GET /v1/debug/replication, both roles.
type replStatus struct {
	Role       string `json:"role"`
	Term       uint64 `json:"term"`
	Seq        uint64 `json:"seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	LagOps     uint64 `json:"lag_ops"`
	Promoted   bool   `json:"promoted"`
}

func fetchReplication(url string) (replStatus, error) {
	var st replStatus
	resp, err := killClient.Get(url + "/v1/debug/replication")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("replication status: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// waitCaughtUp polls a follower until it has applied at least min with no
// reported lag.
func waitCaughtUp(url string, min uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := fetchReplication(url)
		if err == nil && st.AppliedSeq >= min && st.LagOps == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower never caught up to seq %d (applied %d, lag %d): %v", min, st.AppliedSeq, st.LagOps, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitPromoted polls a follower until it reports itself promoted.
func waitPromoted(url string, timeout time.Duration) (replStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := fetchReplication(url)
		if err == nil && st.Promoted {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("follower never promoted: %+v, %v", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// replicaBenchConfig parameterizes the read-scaling benchmark.
type replicaBenchConfig struct {
	killConfig
	replicas  int
	queue     int
	readers   int
	writers   int
	writeRate int // paced writes/second across all writers; 0 = closed loop
	duration  time.Duration
	jsonOut   bool
}

func runReplicaBench(cfg replicaBenchConfig, out io.Writer) error {
	if cfg.readers < 1 || cfg.duration <= 0 {
		return fmt.Errorf("replica bench needs at least one reader and a positive duration")
	}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "schedload-replica-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.dir = dir
	}
	cfg.env = append(cfg.env, "GOMAXPROCS=1")

	leader, err := startDaemon(cfg.killConfig, cfg.dir)
	if err != nil {
		return err
	}
	daemons := []*daemon{leader}
	defer func() {
		for _, d := range daemons {
			d.sigkill()
		}
	}()
	for i := 0; i < cfg.replicas; i++ {
		f, err := startDaemon(cfg.killConfig, cfg.dir,
			"-follow", cfg.dir,
			"-follower-id", fmt.Sprintf("ro-%d", i+1),
			"-replica-poll", "2ms")
		if err != nil {
			return fmt.Errorf("start follower %d: %w", i+1, err)
		}
		daemons = append(daemons, f)
	}

	// Seed the leader with the standing queue every read has to render:
	// one full-width pin, then the usual width mix.
	seedTgt := httpTarget{base: leader.url, client: &http.Client{Timeout: 10 * time.Second}}
	ids := make([]int, 0, cfg.queue+1)
	seed := func(width int, runtime int64) error {
		body, _ := json.Marshal(map[string]any{"width": width, "runtime": runtime})
		code, data, err := seedTgt.do("POST", "/v1/jobs", body)
		if err != nil {
			return err
		}
		if code != http.StatusCreated {
			return fmt.Errorf("seed submit: HTTP %d", code)
		}
		var v struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		ids = append(ids, v.ID)
		return nil
	}
	if err := seed(cfg.procs, 1_000_000); err != nil {
		return err
	}
	for i := 0; i < cfg.queue; i++ {
		w := 1 + (i%16)*4
		if w > cfg.procs {
			w = cfg.procs
		}
		if err := seed(w, int64(1000+100*i)); err != nil {
			return err
		}
	}

	// Every follower must stand at the leader's durable seq before the
	// clock starts; the benchmark measures serving capacity, not catch-up.
	ls, err := fetchReplication(leader.url)
	if err != nil {
		return err
	}
	for i, f := range daemons[1:] {
		if err := waitCaughtUp(f.url, ls.Seq, 30*time.Second); err != nil {
			return fmt.Errorf("follower %d: %w", i+1, err)
		}
	}

	endpoints := make([]target, len(daemons))
	for i, d := range daemons {
		endpoints[i] = httpTarget{base: d.url, client: &http.Client{Timeout: 10 * time.Second}}
	}

	// The writer stream runs across every phase, so follower phases pay
	// their real replication-apply overhead while being measured. It is
	// paced (writeRate across all writers), not closed-loop: the question
	// here is read capacity under a realistic write stream, and on the
	// single-core reference machine a saturating writer would otherwise
	// steal the measured process's CPU share and price contention instead.
	writeStop := make(chan struct{})
	var writeWG sync.WaitGroup
	writeLat := make([][]time.Duration, cfg.writers)
	writeErr := make([]int, cfg.writers)
	writeStart := time.Now()
	for w := 0; w < cfg.writers; w++ {
		w := w
		writeWG.Add(1)
		var pace <-chan time.Time
		if cfg.writeRate > 0 {
			t := time.NewTicker(time.Duration(cfg.writers) * time.Second / time.Duration(cfg.writeRate))
			defer t.Stop()
			pace = t.C
		}
		go func() {
			defer writeWG.Done()
			lat := make([]time.Duration, 0, 1<<12)
			for i := 0; ; i++ {
				if pace != nil {
					select {
					case <-writeStop:
						writeLat[w] = lat
						return
					case <-pace:
					}
				} else {
					select {
					case <-writeStop:
						writeLat[w] = lat
						return
					default:
					}
				}
				body, _ := json.Marshal(map[string]any{
					"width": 1 + i%8, "runtime": 10_000, "user": 1 + (w*31+i)%200,
				})
				t0 := time.Now()
				code, _, err := endpoints[0].do("POST", "/v1/jobs", body)
				if err != nil || code != http.StatusCreated {
					writeErr[w]++
					continue
				}
				lat = append(lat, time.Since(t0))
			}
		}()
	}

	measure := func(tgt target) classStats {
		return measureReads(tgt, ids, cfg.readers, cfg.duration)
	}

	roles := make([]string, len(endpoints))
	phases := make([]classStats, len(endpoints))
	for i, ep := range endpoints {
		if i == 0 {
			roles[i] = "leader"
		} else {
			roles[i] = fmt.Sprintf("follower-%d", i)
		}
		phases[i] = measure(ep)
	}
	close(writeStop)
	writeWG.Wait()
	writes := summarize(writeLat, writeErr, time.Since(writeStart))

	rep := replicaReport{
		Mode:          fmt.Sprintf("replica-%d", cfg.replicas),
		PhaseDuration: cfg.duration.Seconds(),
		Readers:       cfg.readers,
		Writers:       cfg.writers,
		Queue:         cfg.queue,
		Replicas:      cfg.replicas,
		Writes:        writes,
	}
	for i := range phases {
		rep.Endpoints = append(rep.Endpoints, replicaEndpoint{Role: roles[i], Reads: phases[i]})
		rep.AggregateReadQPS += phases[i].QPS
	}
	if phases[0].QPS > 0 {
		rep.ScalingOverLeader = rep.AggregateReadQPS / phases[0].QPS
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "schedload: %s(%s) procs=%d queue=%d readers=%d writers=%d phase=%s mode=%s (leader+%d followers, GOMAXPROCS=1 each, per-process phases)\n",
		cfg.kind, cfg.policy, cfg.procs, cfg.queue, cfg.readers, cfg.writers, cfg.duration, rep.Mode, cfg.replicas)
	for i := range phases {
		printClass(out, roles[i], phases[i])
	}
	fmt.Fprintf(out, "  aggregate read capacity %.1f QPS = %.2fx the leader alone\n",
		rep.AggregateReadQPS, rep.ScalingOverLeader)
	printClass(out, "writes", writes)
	return nil
}

// measureReads runs the standard read mix (80% status, 10% healthz, 5%
// queue, 5% metrics) against one target with `readers` closed-loop
// goroutines for `duration` and summarizes the samples. Shared by the
// replica bench and the routed-read bench so their phases are comparable.
func measureReads(tgt target, ids []int, readers int, duration time.Duration) classStats {
	stopAt := time.Now().Add(duration)
	var wg sync.WaitGroup
	readLat := make([][]time.Duration, readers)
	readErr := make([]int, readers)
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, 1<<16)
			for i := 0; time.Now().Before(stopAt); i++ {
				path := fmt.Sprintf("/v1/jobs/%d", ids[i%len(ids)])
				switch i % 20 {
				case 0:
					path = "/v1/queue"
				case 1:
					path = "/metrics"
				case 2, 3:
					path = "/healthz"
				}
				t0 := time.Now()
				code, _, err := tgt.do("GET", path, nil)
				if err != nil || code != http.StatusOK {
					readErr[r]++
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			readLat[r] = lat
		}()
	}
	wg.Wait()
	return summarize(readLat, readErr, duration)
}

// replicaEndpoint is one serving process's isolated read phase.
type replicaEndpoint struct {
	Role  string     `json:"role"`
	Reads classStats `json:"reads"`
}

// replicaReport is the machine-readable form of one -replicas run.
type replicaReport struct {
	Mode              string            `json:"mode"`
	PhaseDuration     float64           `json:"phase_duration_s"`
	Readers           int               `json:"readers"`
	Writers           int               `json:"writers"`
	Queue             int               `json:"queue"`
	Replicas          int               `json:"replicas"`
	Endpoints         []replicaEndpoint `json:"endpoints"`
	AggregateReadQPS  float64           `json:"aggregate_read_qps"`
	ScalingOverLeader float64           `json:"scaling_over_leader"`
	Writes            classStats        `json:"writes"`
}

// runPromote is the leader-failover drill. Each cycle: burst acknowledged
// writes at the leader, SIGKILL it, wait for its follower to self-promote,
// and require the promoted daemon's state hash to match an in-process
// shadow replay of the journal — which must itself hold every acknowledged
// write. Verification runs before the probe submit so the comparison is
// against exactly the state the dead leader acknowledged.
func runPromote(cfg killConfig, out io.Writer) error {
	if cfg.iters < 1 {
		return fmt.Errorf("promote mode needs at least one iteration")
	}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "schedload-promote-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.dir = dir
	}
	fmt.Fprintf(out, "schedload promote mode: %s(%s) procs=%d writers=%d burst=%s fsync=%v journal=%s\n",
		cfg.kind, cfg.policy, cfg.procs, cfg.writers, cfg.burst, cfg.fsync, cfg.dir)

	nf := 0
	startFollower := func(leaderURL string) (*daemon, error) {
		nf++
		return startDaemon(cfg, cfg.dir,
			"-follow", cfg.dir,
			"-follower-id", fmt.Sprintf("fo-%d", nf),
			"-replica-poll", "2ms",
			"-leader-health", leaderURL,
			"-promote-after", "3")
	}

	leader, err := startDaemon(cfg, cfg.dir)
	if err != nil {
		return err
	}
	follower, err := startFollower(leader.url)
	if err != nil {
		leader.sigkill()
		return err
	}
	// The loop rotates both on every cycle; kill whichever pair is live.
	defer func() { leader.sigkill(); follower.sigkill() }()

	totalAcked := 0
	for i := 1; i <= cfg.iters; i++ {
		acks := burstWrites(leader, cfg, cfg.burst)
		if len(acks.submitted) == 0 {
			return fmt.Errorf("cycle %d: no write was acknowledged before the kill; lengthen -burst", i)
		}
		leader.sigkill()

		st, err := waitPromoted(follower.url, 30*time.Second)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", i, err)
		}
		shadow, shadowHash, err := shadowReplay(cfg, cfg.dir)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", i, err)
		}
		if err := verifyAcks(shadow.Current(), acks); err != nil {
			return fmt.Errorf("cycle %d: shadow replay: %w", i, err)
		}
		daemonHash, _, err := daemonDurability(follower.url)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", i, err)
		}
		if want := strconv.FormatUint(shadowHash, 10); daemonHash != want {
			return fmt.Errorf("cycle %d: promotion diverged: promoted hash %s, shadow replay %s", i, daemonHash, want)
		}
		if err := probeSubmit(follower.url); err != nil {
			return fmt.Errorf("cycle %d: promoted daemon not accepting writes: %w", i, err)
		}
		totalAcked += len(acks.submitted) + len(acks.cancelled)
		fmt.Fprintf(out, "cycle %d: %d submits + %d cancels acknowledged, leader SIGKILLed, follower promoted (term %d), hash %s matches shadow, writes live\n",
			i, len(acks.submitted), len(acks.cancelled), st.Term, daemonHash)

		// The promoted daemon is the next cycle's leader; put a fresh
		// follower behind it so later cycles promote promoted state.
		leader = follower
		follower, err = startFollower(leader.url)
		if err != nil {
			follower = leader // keep the defer pair valid
			return fmt.Errorf("cycle %d: start next follower: %w", i, err)
		}
	}
	fmt.Fprintf(out, "promote mode: %d/%d leader-kill/promote cycles clean, %d acknowledged writes, no acknowledged write lost\n",
		cfg.iters, cfg.iters, totalAcked)
	return nil
}
