package main

// Crash mode: the kill-during-load proof that the durability layer loses
// nothing it acknowledged. Each iteration bursts writes at a real schedd
// subprocess, SIGKILLs it mid-burst (the crash a supervisor or OOM killer
// delivers — no handlers, no flushing), then checks the journal from both
// ends:
//
//  1. Shadow replay: wal.Load reads the dead daemon's journal (truncating
//     any torn tail) and an in-process server replays it from genesis.
//  2. Daemon recovery: a restarted schedd recovers through its own
//     checkpoint+tail path and reports its state hash over the debug API.
//
// The two hashes must agree with each other, and every write the dead
// daemon acknowledged — submit IDs returned with 201, cancels returned
// with 204 — must exist in the recovered state. The restarted daemon must
// also still be serving (one probe submit per iteration), and the journal
// carries over to the next iteration, so later crashes also prove recovery
// of recovered state.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/wal"
)

type killConfig struct {
	scheddBin string
	dir       string
	procs     int
	kind      string
	policy    string
	fsync     bool
	writers   int
	iters     int
	burst     time.Duration
	env       []string // extra subprocess environment (the replica bench pins GOMAXPROCS=1)
}

// daemon is one running schedd subprocess.
type daemon struct {
	cmd  *exec.Cmd
	url  string
	exit error         // valid once dead is closed
	dead chan struct{} // closed when the process has been reaped
}

// startDaemon spawns schedd on a free port with the given journal
// directory (plus any extra flags — the federated drill passes each
// member's ID congruence class) and waits for its ready line.
func startDaemon(cfg killConfig, dir string, extra ...string) (*daemon, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-procs", strconv.Itoa(cfg.procs),
		"-sched", cfg.kind,
		"-policy", cfg.policy,
		"-speed", "1e-9", // frozen clock: the queue the crash interrupts stays put
		"-data-dir", dir,
	}
	if cfg.fsync {
		args = append(args, "-fsync")
	}
	args = append(args, extra...)
	cmd := exec.Command(cfg.scheddBin, args...)
	if len(cfg.env) > 0 {
		cmd.Env = append(os.Environ(), cfg.env...)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", cfg.scheddBin, err)
	}
	d := &daemon{cmd: cmd, dead: make(chan struct{})}
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if _, after, ok := strings.Cut(sc.Text(), "listening on "); ok {
				select {
				case urlc <- strings.TrimSpace(after):
				default:
				}
			}
		}
	}()
	go func() { d.exit = cmd.Wait(); close(d.dead) }()
	select {
	case d.url = <-urlc:
		return d, nil
	case <-d.dead:
		return nil, fmt.Errorf("schedd exited before ready: %v\n%s", d.exit, stderr.String())
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("schedd never became ready\n%s", stderr.String())
	}
}

// sigkill delivers the unsurvivable signal and waits for the process to be
// reaped, so the journal directory's flock is free for the next boot.
// Idempotent: killing an already-dead daemon returns immediately.
func (d *daemon) sigkill() {
	d.cmd.Process.Signal(syscall.SIGKILL)
	<-d.dead
}

// ackLog collects the writes one burst got acknowledged.
type ackLog struct {
	mu        sync.Mutex
	submitted []int
	cancelled []int
}

// burstWrites hammers the daemon with submits (and occasional cancels of
// its own acknowledged jobs) until stop, recording only acknowledged IDs.
// Transport errors are expected once the SIGKILL lands and are ignored.
func burstWrites(d *daemon, cfg killConfig, dur time.Duration) *ackLog {
	acks := &ackLog{}
	cl := &http.Client{Timeout: 5 * time.Second}
	stopAt := time.Now().Add(dur)
	var wg sync.WaitGroup
	for w := 0; w < cfg.writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []int
			for i := 0; time.Now().Before(stopAt); i++ {
				body, _ := json.Marshal(map[string]any{
					"width":   1 + (w*7+i)%cfg.procs,
					"runtime": 100_000, // outlives the run: the crash interrupts a full machine
				})
				resp, err := cl.Post(d.url+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					continue // connection died mid-request: not acknowledged
				}
				var v struct {
					ID int `json:"id"`
				}
				code := resp.StatusCode
				decErr := json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if code != http.StatusCreated || decErr != nil {
					continue
				}
				mine = append(mine, v.ID)
				acks.mu.Lock()
				acks.submitted = append(acks.submitted, v.ID)
				acks.mu.Unlock()
				if i%11 == 10 && len(mine) > 0 {
					victim := mine[len(mine)/2]
					req, _ := http.NewRequest(http.MethodDelete, d.url+"/v1/jobs/"+strconv.Itoa(victim), nil)
					resp, err := cl.Do(req)
					if err != nil {
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusNoContent {
						acks.mu.Lock()
						acks.cancelled = append(acks.cancelled, victim)
						acks.mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	return acks
}

// shadowReplay loads the crashed daemon's journal from dir and replays it
// from genesis into an in-process server, returning the replica and its
// hash.
func shadowReplay(cfg killConfig, dir string) (*serve.Server, uint64, error) {
	st, err := wal.Load(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("load journal: %w", err)
	}
	shadow, err := serve.New(serve.Options{
		Procs:     cfg.procs,
		Scheduler: cfg.kind,
		Policy:    cfg.policy,
		Audit:     true,
		Speed:     1e-9,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := shadow.Replay(st.Ops()); err != nil {
		return nil, 0, fmt.Errorf("shadow replay: %w", err)
	}
	return shadow, shadow.StateHash(), nil
}

// verifyAcks checks that every acknowledged write exists in the replica's
// published snapshot.
func verifyAcks(snap *serve.Snapshot, acks *ackLog) error {
	for _, id := range acks.submitted {
		if _, ok := snap.Jobs.Get(id); !ok {
			return fmt.Errorf("acknowledged job %d missing after recovery", id)
		}
	}
	cancelledState := sim.StateCancelled.String()
	for _, id := range acks.cancelled {
		v, ok := snap.Jobs.Get(id)
		if !ok {
			return fmt.Errorf("acknowledged cancelled job %d missing after recovery", id)
		}
		if v.State != cancelledState {
			return fmt.Errorf("acknowledged cancel of job %d lost: state %q", id, v.State)
		}
	}
	return nil
}

// killClient bounds every post-restart check; a daemon that recovered into
// a wedged state should fail the drill, not hang it.
var killClient = &http.Client{Timeout: 30 * time.Second}

// daemonDurability reads the restarted daemon's debug endpoint.
func daemonDurability(url string) (hash string, recovered bool, err error) {
	resp, err := killClient.Get(url + "/v1/debug/durability")
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	var info struct {
		StateHash string `json:"state_hash"`
		Recovery  *struct {
			CheckpointOps int `json:"checkpoint_ops"`
			TailRecords   int `json:"tail_records"`
		} `json:"recovery"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return "", false, err
	}
	r := info.Recovery
	return info.StateHash, r != nil && (r.CheckpointOps > 0 || r.TailRecords > 0), nil
}

// probeSubmit checks the restarted daemon still accepts work.
func probeSubmit(url string) error {
	body := strings.NewReader(`{"width": 1, "runtime": 60}`)
	resp, err := killClient.Post(url+"/v1/jobs", "application/json", body)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("probe submit: HTTP %d", resp.StatusCode)
	}
	return nil
}

func runKill(cfg killConfig, out io.Writer) error {
	if cfg.iters < 1 {
		return fmt.Errorf("kill mode needs at least one iteration")
	}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "schedload-kill-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.dir = dir
	}
	fmt.Fprintf(out, "schedload kill mode: %s(%s) procs=%d writers=%d burst=%s fsync=%v journal=%s\n",
		cfg.kind, cfg.policy, cfg.procs, cfg.writers, cfg.burst, cfg.fsync, cfg.dir)

	d, err := startDaemon(cfg, cfg.dir)
	if err != nil {
		return err
	}
	// The loop replaces d on every restart; kill whichever daemon is live
	// when we leave. (Each daemon's waitc is received exactly once.)
	defer func() { d.sigkill() }()

	totalAcked := 0
	for i := 1; i <= cfg.iters; i++ {
		acks := burstWrites(d, cfg, cfg.burst)
		d.sigkill()
		if len(acks.submitted) == 0 {
			return fmt.Errorf("iteration %d: no write was acknowledged before the kill; lengthen -burst", i)
		}

		shadow, shadowHash, err := shadowReplay(cfg, cfg.dir)
		if err != nil {
			return fmt.Errorf("iteration %d: %w", i, err)
		}
		if err := verifyAcks(shadow.Current(), acks); err != nil {
			return fmt.Errorf("iteration %d: shadow replay: %w", i, err)
		}

		d, err = startDaemon(cfg, cfg.dir)
		if err != nil {
			return fmt.Errorf("iteration %d: restart: %w", i, err)
		}
		daemonHash, recovered, err := daemonDurability(d.url)
		if err != nil {
			return fmt.Errorf("iteration %d: %w", i, err)
		}
		if !recovered {
			return fmt.Errorf("iteration %d: restarted daemon reports no recovery", i)
		}
		if want := strconv.FormatUint(shadowHash, 10); daemonHash != want {
			return fmt.Errorf("iteration %d: recovery diverged: daemon hash %s, shadow replay %s", i, daemonHash, want)
		}
		if err := probeSubmit(d.url); err != nil {
			return fmt.Errorf("iteration %d: daemon not serving after recovery: %w", i, err)
		}
		totalAcked += len(acks.submitted) + len(acks.cancelled)
		fmt.Fprintf(out, "iteration %d: %d submits + %d cancels acknowledged, SIGKILL, recovery hash %s matches shadow, service live\n",
			i, len(acks.submitted), len(acks.cancelled), daemonHash)
	}
	fmt.Fprintf(out, "kill mode: %d/%d crash/restart cycles clean, %d acknowledged writes, no acknowledged write lost\n",
		cfg.iters, cfg.iters, totalAcked)
	return nil
}
