package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestLoadSelfHostedBothModes runs a short self-hosted burst in each read
// mode and checks the generator completes with traffic and no errors.
func TestLoadSelfHostedBothModes(t *testing.T) {
	for _, mode := range []string{"snapshot", "mailbox"} {
		t.Run(mode, func(t *testing.T) {
			args := []string{
				"-procs", "16", "-queue", "16",
				"-readers", "2", "-writers", "1",
				"-duration", "200ms",
			}
			if mode == "mailbox" {
				args = append(args, "-mailbox")
			}
			var out strings.Builder
			if err := run(args, &out); err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
			s := out.String()
			if !strings.Contains(s, "mode="+mode) {
				t.Errorf("missing mode in report:\n%s", s)
			}
			for _, want := range []string{"reads:", "writes:", "errors=0"} {
				if !strings.Contains(s, want) {
					t.Errorf("report missing %q:\n%s", want, s)
				}
			}
		})
	}
}

// TestLoadWALMode runs a short self-hosted burst with the journal on: the
// writes must still complete without errors and the mode tag must say so.
func TestLoadWALMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-procs", "16", "-queue", "8",
		"-readers", "1", "-writers", "2",
		"-duration", "200ms",
		"-data-dir", t.TempDir(),
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "mode=snapshot+wal") {
		t.Errorf("missing WAL mode tag in report:\n%s", s)
	}
	for _, want := range []string{"writes:", "errors=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestLoadKillMode is the end-to-end crash drill: build the real schedd
// binary, SIGKILL it mid-burst twice, and require both recoveries to match
// the shadow replay of the journal.
func TestLoadKillMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-cycles a real daemon")
	}
	bin := filepath.Join(t.TempDir(), "schedd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/schedd").CombinedOutput(); err != nil {
		t.Fatalf("build schedd: %v\n%s", err, out)
	}
	var out strings.Builder
	err := run([]string{
		"-kill", "-schedd", bin,
		"-data-dir", t.TempDir(),
		"-procs", "16", "-writers", "2",
		"-iters", "2", "-burst", "250ms",
	}, &out)
	if err != nil {
		t.Fatalf("kill mode: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"iteration 1:", "iteration 2:",
		"matches shadow", "no acknowledged write lost",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("kill report missing %q:\n%s", want, s)
		}
	}
}

// TestLoadJSONReport checks the machine-readable form carries real counts.
func TestLoadJSONReport(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-procs", "8", "-queue", "4", "-readers", "1", "-writers", "0",
		"-duration", "100ms", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"mode": "snapshot"`, `"qps"`, `"p99_us"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON report missing %q:\n%s", want, s)
		}
	}
}

// TestLoadFlagValidation pins the argument errors.
func TestLoadFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-readers", "0", "-writers", "0"}, &out); err == nil {
		t.Error("zero readers and writers should fail")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "-mailbox"}, &out); err == nil {
		t.Error("-addr with -mailbox should fail")
	}
	if err := run([]string{"-duration", "0s"}, &out); err == nil {
		t.Error("zero duration should fail")
	}
	if err := run([]string{"-shards", "0"}, &out); err == nil {
		t.Error("zero shards should fail")
	}
	if err := run([]string{"-shards", "2", "-mailbox"}, &out); err == nil {
		t.Error("-shards with -mailbox should fail")
	}
	if err := run([]string{"-shards", "2", "-route", "bogus", "-duration", "100ms"}, &out); err == nil {
		t.Error("unknown route should fail")
	}
}

// TestLoadFederated runs short federated bursts: a read+write mix over a
// width-routed federation and a write-only sweep (the shape of the
// BENCH_PR7 scaling experiment), both of which must complete error-free
// with the federated mode tag.
func TestLoadFederated(t *testing.T) {
	t.Run("mixed", func(t *testing.T) {
		var out strings.Builder
		err := run([]string{
			"-procs", "16", "-queue", "16", "-shards", "2", "-route", "width",
			"-readers", "2", "-writers", "2", "-duration", "200ms",
		}, &out)
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
		s := out.String()
		if !strings.Contains(s, "mode=fed-2-width") {
			t.Errorf("missing federated mode tag:\n%s", s)
		}
		for _, want := range []string{"reads:", "writes:", "errors=0"} {
			if !strings.Contains(s, want) {
				t.Errorf("report missing %q:\n%s", want, s)
			}
		}
	})
	t.Run("write-only-json", func(t *testing.T) {
		var out strings.Builder
		err := run([]string{
			"-procs", "16", "-queue", "8", "-shards", "2", "-route", "hash",
			"-readers", "0", "-writers", "2", "-duration", "200ms", "-json",
		}, &out)
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
		s := out.String()
		for _, want := range []string{`"mode": "fed-2-hash"`, `"shards": 2`, `"route": "hash"`} {
			if !strings.Contains(s, want) {
				t.Errorf("JSON report missing %q:\n%s", want, s)
			}
		}
	})
	t.Run("federated-wal", func(t *testing.T) {
		var out strings.Builder
		err := run([]string{
			"-procs", "16", "-queue", "4", "-shards", "2",
			"-readers", "1", "-writers", "1", "-duration", "150ms",
			"-data-dir", t.TempDir(),
		}, &out)
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
		if s := out.String(); !strings.Contains(s, "mode=fed-2-width+wal") {
			t.Errorf("missing federated WAL mode tag:\n%s", s)
		}
	})
}

// TestLoadKillFederated is the federated crash drill: four real schedd
// members with per-shard journals, one SIGKILLed per iteration while the
// drill requires the survivors to keep acknowledging writes and the victim
// to recover to the shadow replay's hash.
func TestLoadKillFederated(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-cycles a real 4-shard federation")
	}
	bin := filepath.Join(t.TempDir(), "schedd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/schedd").CombinedOutput(); err != nil {
		t.Fatalf("build schedd: %v\n%s", err, out)
	}
	var out strings.Builder
	err := run([]string{
		"-kill", "-shards", "4", "-schedd", bin,
		"-data-dir", t.TempDir(),
		"-procs", "16", "-writers", "4",
		"-iters", "2", "-burst", "300ms",
	}, &out)
	if err != nil {
		t.Fatalf("federated kill mode: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"iteration 1: shard 0 killed", "iteration 2: shard 1 killed",
		"3 siblings stayed live", "matches shadow", "no acknowledged write lost",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("federated kill report missing %q:\n%s", want, s)
		}
	}
}

// buildSchedd compiles the real daemon once per test that needs it.
func buildSchedd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "schedd")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/schedd").CombinedOutput(); err != nil {
		t.Fatalf("build schedd: %v\n%s", err, out)
	}
	return bin
}

// TestLoadReplicaBench spins a leader plus one follower, requires the
// followers to catch up before the window opens, and the read mix to be
// error-free across both endpoints.
func TestLoadReplicaBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real daemons")
	}
	bin := buildSchedd(t)
	var out strings.Builder
	err := run([]string{
		"-replicas", "1", "-schedd", bin,
		"-data-dir", t.TempDir(),
		"-procs", "16", "-queue", "16",
		"-readers", "2", "-writers", "1",
		"-duration", "300ms",
	}, &out)
	if err != nil {
		t.Fatalf("replica bench: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "mode=replica-1") {
		t.Errorf("missing replica mode tag:\n%s", s)
	}
	for _, want := range []string{"leader:", "follower-1:", "aggregate read capacity", "writes:", "errors=0"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestLoadPromoteMode is the end-to-end failover drill: SIGKILL the leader
// mid-burst twice and require the follower to promote each time with the
// shadow replay's hash and every acknowledged write.
func TestLoadPromoteMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-cycles real daemons")
	}
	bin := buildSchedd(t)
	var out strings.Builder
	err := run([]string{
		"-promote", "-schedd", bin,
		"-data-dir", t.TempDir(),
		"-procs", "16", "-writers", "2",
		"-iters", "2", "-burst", "250ms",
	}, &out)
	if err != nil {
		t.Fatalf("promote mode: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"cycle 1:", "cycle 2:",
		"follower promoted (term 1)", "follower promoted (term 2)",
		"matches shadow", "no acknowledged write lost",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("promote report missing %q:\n%s", want, s)
		}
	}
}

// TestLoadReplicaFlagValidation pins the replica-mode argument errors.
func TestLoadReplicaFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-replicas", "1", "-kill"}, &out); err == nil {
		t.Error("-replicas with -kill should fail")
	}
	if err := run([]string{"-promote", "-shards", "2"}, &out); err == nil {
		t.Error("-promote with -shards should fail")
	}
	if err := run([]string{"-promote", "-replicas", "1"}, &out); err == nil {
		t.Error("-promote with -replicas should fail")
	}
	if err := run([]string{"-replicas", "1", "-readers", "0"}, &out); err == nil {
		t.Error("replica bench without readers should fail")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(sorted, 0.99); got != 9 {
		t.Errorf("p99 = %d, want 9", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
}
