package main

import (
	"strings"
	"testing"
	"time"
)

// TestLoadSelfHostedBothModes runs a short self-hosted burst in each read
// mode and checks the generator completes with traffic and no errors.
func TestLoadSelfHostedBothModes(t *testing.T) {
	for _, mode := range []string{"snapshot", "mailbox"} {
		t.Run(mode, func(t *testing.T) {
			args := []string{
				"-procs", "16", "-queue", "16",
				"-readers", "2", "-writers", "1",
				"-duration", "200ms",
			}
			if mode == "mailbox" {
				args = append(args, "-mailbox")
			}
			var out strings.Builder
			if err := run(args, &out); err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
			s := out.String()
			if !strings.Contains(s, "mode="+mode) {
				t.Errorf("missing mode in report:\n%s", s)
			}
			for _, want := range []string{"reads:", "writes:", "errors=0"} {
				if !strings.Contains(s, want) {
					t.Errorf("report missing %q:\n%s", want, s)
				}
			}
		})
	}
}

// TestLoadJSONReport checks the machine-readable form carries real counts.
func TestLoadJSONReport(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-procs", "8", "-queue", "4", "-readers", "1", "-writers", "0",
		"-duration", "100ms", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{`"mode": "snapshot"`, `"qps"`, `"p99_us"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON report missing %q:\n%s", want, s)
		}
	}
}

// TestLoadFlagValidation pins the argument errors.
func TestLoadFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-readers", "0"}, &out); err == nil {
		t.Error("zero readers should fail")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "-mailbox"}, &out); err == nil {
		t.Error("-addr with -mailbox should fail")
	}
	if err := run([]string{"-duration", "0s"}, &out); err == nil {
		t.Error("zero duration should fail")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(sorted, 0.99); got != 9 {
		t.Errorf("p99 = %d, want 9", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
}
