package main

// Federated crash mode (-kill -shards N): the drill for the failure story a
// federation exists to tell — one cluster shard dies, the others do not
// care. It spawns a process-per-shard federation (N real schedd members,
// each with its own journal directory in the fed.ShardDir layout and its
// own job-ID congruence class, exactly the state a fed.Federation would
// recover from), bursts writes round-robin across the members, then
// SIGKILLs one shard per iteration and verifies three things while the
// victim is down and after it returns:
//
//  1. Siblings keep serving: every surviving shard answers /healthz and
//     acknowledges a probe submit while the victim is dead.
//  2. The victim loses nothing: a shadow replay of its journal must hold
//     every write it acknowledged before the kill.
//  3. Recovery converges: the restarted victim's own recovery must land on
//     the shadow replay's state hash, and the shard must serve again.
//
// The victim rotates each iteration, so an N-iteration run crashes and
// recovers N different shards against journals that already contain
// recovered history.

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/fed"
)

// burstWritesFed hammers all members round-robin for dur, returning the
// acknowledged writes per shard. Each writer walks the members in order so
// every shard sees a share of the burst.
func burstWritesFed(members []*daemon, cfg killConfig, dur time.Duration) []*ackLog {
	acks := make([]*ackLog, len(members))
	var wg sync.WaitGroup
	for s, d := range members {
		s, d := s, d
		acks[s] = &ackLog{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			perShard := cfg
			perShard.writers = max(cfg.writers/len(members), 1)
			got := burstWrites(d, perShard, dur)
			acks[s].submitted = got.submitted
			acks[s].cancelled = got.cancelled
		}()
	}
	wg.Wait()
	return acks
}

// healthOK reports whether a member answers /healthz with 200.
func healthOK(url string) error {
	resp, err := killClient.Get(url + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

// startMember boots shard s of n: its own journal directory and its own
// job-ID congruence class (IDs ≡ s+1 mod n), so the federation's IDs stay
// globally unique across processes with zero coordination.
func startMember(cfg killConfig, s, n int) (*daemon, error) {
	return startDaemon(cfg, fed.ShardDir(cfg.dir, s),
		"-id-start", strconv.Itoa(s+1), "-id-stride", strconv.Itoa(n))
}

func runKillFed(cfg killConfig, shards int, out io.Writer) error {
	if cfg.iters < 1 {
		return fmt.Errorf("kill mode needs at least one iteration")
	}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "schedload-killfed-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.dir = dir
	}
	fmt.Fprintf(out, "schedload federated kill mode: %d shards of %s(%s) procs=%d writers=%d burst=%s fsync=%v journals=%s/shard-*\n",
		shards, cfg.kind, cfg.policy, cfg.procs, cfg.writers, cfg.burst, cfg.fsync, cfg.dir)

	members := make([]*daemon, shards)
	for s := range members {
		if err := os.MkdirAll(fed.ShardDir(cfg.dir, s), 0o755); err != nil {
			return err
		}
		d, err := startMember(cfg, s, shards)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		members[s] = d
	}
	defer func() {
		for _, d := range members {
			d.sigkill()
		}
	}()

	totalAcked := 0
	for i := 1; i <= cfg.iters; i++ {
		victim := (i - 1) % shards
		acks := burstWritesFed(members, cfg, cfg.burst)
		members[victim].sigkill()
		if len(acks[victim].submitted) == 0 {
			return fmt.Errorf("iteration %d: shard %d had no acknowledged write before the kill; lengthen -burst", i, victim)
		}

		// The whole point of sharding: siblings must not notice.
		for s, d := range members {
			if s == victim {
				continue
			}
			if err := healthOK(d.url); err != nil {
				return fmt.Errorf("iteration %d: shard %d unhealthy while shard %d is down: %w", i, s, victim, err)
			}
			if err := probeSubmit(d.url); err != nil {
				return fmt.Errorf("iteration %d: shard %d not accepting writes while shard %d is down: %w", i, s, victim, err)
			}
		}

		shadow, shadowHash, err := shadowReplay(cfg, fed.ShardDir(cfg.dir, victim))
		if err != nil {
			return fmt.Errorf("iteration %d: shard %d: %w", i, victim, err)
		}
		if err := verifyAcks(shadow.Current(), acks[victim]); err != nil {
			return fmt.Errorf("iteration %d: shard %d shadow replay: %w", i, victim, err)
		}

		d, err := startMember(cfg, victim, shards)
		if err != nil {
			return fmt.Errorf("iteration %d: shard %d restart: %w", i, victim, err)
		}
		members[victim] = d
		daemonHash, recovered, err := daemonDurability(d.url)
		if err != nil {
			return fmt.Errorf("iteration %d: shard %d: %w", i, victim, err)
		}
		if !recovered {
			return fmt.Errorf("iteration %d: restarted shard %d reports no recovery", i, victim)
		}
		if want := strconv.FormatUint(shadowHash, 10); daemonHash != want {
			return fmt.Errorf("iteration %d: shard %d recovery diverged: daemon hash %s, shadow replay %s", i, victim, daemonHash, want)
		}
		if err := probeSubmit(d.url); err != nil {
			return fmt.Errorf("iteration %d: shard %d not serving after recovery: %w", i, victim, err)
		}
		for _, a := range acks {
			totalAcked += len(a.submitted) + len(a.cancelled)
		}
		fmt.Fprintf(out, "iteration %d: shard %d killed after %d acks, %d siblings stayed live, recovery hash %s matches shadow\n",
			i, victim, len(acks[victim].submitted)+len(acks[victim].cancelled), shards-1, daemonHash)
	}
	fmt.Fprintf(out, "federated kill mode: %d/%d crash/restart cycles clean across %d shards, %d acknowledged writes, no acknowledged write lost\n",
		cfg.iters, cfg.iters, shards, totalAcked)
	return nil
}
