package main

// PR 9 modes: the routed-read scaling bench, the ack-quorum write sweep,
// and the quorum crash drill.
//
// The routed bench (-read-route replica) spawns a real front end running
// with -read-route replica plus -followers followers per shard, each
// follower pulling its shard's journal over HTTP and advertising its own
// read URL. As in the -replicas bench, every process is pinned to one CPU
// (GOMAXPROCS=1) and serving capacity is measured in sequential
// per-process phases: the front end alone before any follower exists (the
// leader-only baseline), then each follower directly. The aggregate over
// the baseline is the read-scaling number in BENCH_PR9.json — on N+1
// cores those phases run concurrently, which is exactly what the sum
// models. A final phase drives the front end with routing live and
// requires /v1/debug/routing to show proxied reads, proving the balancer
// actually spreads the traffic it was measured to have capacity for.
//
// The quorum sweep (-ack-quorum K) measures what follower acknowledgement
// costs the write path: for each level q in 0..K it boots a fresh leader
// with -ack-quorum q and K long-polling HTTP followers (the follower
// count is constant across levels so replication pull load is not a
// variable), hammers it with closed-loop writers, and reports write QPS
// per level plus the cost relative to level 0. The journal Notify hook
// wakes parked follower polls before the leader's fsync, so a quorum
// round-trip overlaps the sync instead of queueing behind it — the sweep
// exists to measure how well that overlap works.
//
// The drill (-quorum-drill) is the crash proof for quorum mode: a 2-shard
// federation front end with -ack-quorum 1 and two followers per shard.
// Each cycle SIGKILLs one follower mid-burst; writes must keep
// acknowledging through the survivor (a dead follower's registry entry
// must never satisfy a quorum — the commit-time liveness re-check), no
// acknowledged write may be lost (shadow replay of both shard journals),
// and the per-shard quorum counters must show zero degraded or rejected
// writes. The victim rotates across shards and cycles.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/fed"
)

// routingInfo is the wire form of GET /v1/debug/routing, decoded to what
// the drills assert on.
type routingInfo struct {
	ReadRoute string `json:"read_route"`
	Shards    []struct {
		Shard     int   `json:"shard"`
		Proxied   int64 `json:"proxied"`
		Fallbacks int64 `json:"fallbacks"`
		Ejections int64 `json:"ejections"`
		Followers []struct {
			ID       string `json:"id"`
			Addr     string `json:"addr"`
			Eligible bool   `json:"eligible"`
		} `json:"followers"`
	} `json:"shards"`
}

func fetchRouting(url string) (routingInfo, error) {
	var ri routingInfo
	resp, err := killClient.Get(url + "/v1/debug/routing")
	if err != nil {
		return ri, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ri, fmt.Errorf("routing status: HTTP %d", resp.StatusCode)
	}
	return ri, json.NewDecoder(resp.Body).Decode(&ri)
}

// shardReplication reads one federation shard's leader-side replication
// state (GET /v1/shards/{i}/replication).
type shardReplInfo struct {
	Seq            uint64 `json:"seq"`
	AckQuorum      int    `json:"ack_quorum"`
	QuorumDegraded int64  `json:"quorum_degraded"`
	QuorumRejected int64  `json:"quorum_rejected"`
	Followers      []struct {
		ID       string `json:"id"`
		Addr     string `json:"addr"`
		AckedSeq uint64 `json:"acked_seq"`
	} `json:"followers"`
}

func fetchShardReplication(url string, shard int) (shardReplInfo, error) {
	var ri shardReplInfo
	resp, err := killClient.Get(fmt.Sprintf("%s/v1/shards/%d/replication", url, shard))
	if err != nil {
		return ri, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ri, fmt.Errorf("shard %d replication: HTTP %d", shard, resp.StatusCode)
	}
	return ri, json.NewDecoder(resp.Body).Decode(&ri)
}

// waitEligible polls the front end until every shard shows `want` eligible
// followers in its read rotation.
func waitEligible(url string, shards, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ri, err := fetchRouting(url)
		if err == nil {
			ok := len(ri.Shards) == shards
			for _, s := range ri.Shards {
				n := 0
				for _, f := range s.Followers {
					if f.Eligible {
						n++
					}
				}
				if n < want {
					ok = false
				}
			}
			if ok {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("followers never became read-eligible on all %d shards: %+v, %v", shards, ri, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startShardFollower boots one HTTP follower of shard s behind a
// federation front end: it pulls /v1/shards/s/wal, long-polls so acks ride
// the journal Notify wakeup, and advertises its own listen URL for read
// routing. Followers run in-memory (no -data-dir): their durability is the
// leader's journal.
func startShardFollower(cfg killConfig, frontURL string, s, j int) (*daemon, error) {
	return startDaemon(cfg, "",
		"-follow", fmt.Sprintf("%s/v1/shards/%d", frontURL, s),
		"-follower-id", fmt.Sprintf("ro-%d-%d", s, j),
		"-replica-poll", "2ms",
		"-replica-wait", "250ms")
}

// routedBenchConfig parameterizes the routed-read scaling bench.
type routedBenchConfig struct {
	killConfig
	shards    int
	followers int // per shard
	queue     int
	readers   int
	duration  time.Duration
	jsonOut   bool
}

// routedReport is the machine-readable form of one -read-route run.
type routedReport struct {
	Mode              string            `json:"mode"`
	PhaseDuration     float64           `json:"phase_duration_s"`
	Readers           int               `json:"readers"`
	Queue             int               `json:"queue"`
	Shards            int               `json:"shards"`
	FollowersPerShard int               `json:"followers_per_shard"`
	Endpoints         []replicaEndpoint `json:"endpoints"`
	AggregateReadQPS  float64           `json:"aggregate_read_qps"`
	ScalingOverLeader float64           `json:"scaling_over_leader"`
	RoutedReads       classStats        `json:"routed_reads"`
	ProxiedReads      int64             `json:"proxied_reads"`
	FallbackReads     int64             `json:"fallback_reads"`
}

func runRoutedBench(cfg routedBenchConfig, out io.Writer) error {
	if cfg.readers < 1 || cfg.duration <= 0 {
		return fmt.Errorf("routed bench needs at least one reader and a positive duration")
	}
	if cfg.followers < 1 {
		return fmt.Errorf("routed bench needs at least one follower per shard")
	}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "schedload-routed-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.dir = dir
	}
	cfg.env = append(cfg.env, "GOMAXPROCS=1")

	front, err := startDaemon(cfg.killConfig, cfg.dir,
		"-read-route", "replica",
		"-shards", strconv.Itoa(cfg.shards))
	if err != nil {
		return err
	}
	daemons := []*daemon{front}
	defer func() {
		for _, d := range daemons {
			d.sigkill()
		}
	}()
	frontTgt := httpTarget{base: front.url, client: &http.Client{Timeout: 10 * time.Second}}

	// Seed the standing queue through the front end: one full-width pin per
	// shard, then the usual width mix, recording the assigned (per-shard
	// congruence class) IDs for the status-poll mix.
	ids := make([]int, 0, cfg.queue+cfg.shards)
	seed := func(width int, runtime int64, user int) error {
		body, _ := json.Marshal(map[string]any{"width": width, "runtime": runtime, "user": user})
		code, data, err := frontTgt.do("POST", "/v1/jobs", body)
		if err != nil {
			return err
		}
		if code != http.StatusCreated {
			return fmt.Errorf("seed submit: HTTP %d", code)
		}
		var v struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		ids = append(ids, v.ID)
		return nil
	}
	for s := 0; s < cfg.shards; s++ {
		if err := seed(cfg.procs, 1_000_000, s+1); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.queue; i++ {
		w := 1 + (i%16)*4
		if w > cfg.procs {
			w = cfg.procs
		}
		if err := seed(w, int64(1000+100*i), 1+i%200); err != nil {
			return err
		}
	}

	// Phase 0 — leader-only baseline: no follower exists yet, so every read
	// renders on the shard leaders. This is the denominator of the scaling
	// claim.
	roles := []string{"leader-only"}
	phases := []classStats{measureReads(frontTgt, ids, cfg.readers, cfg.duration)}

	// Bring up the follower fleet and wait until the balancers report every
	// one of them read-eligible — the bench measures serving capacity, not
	// catch-up.
	followers := make([]*daemon, 0, cfg.shards*cfg.followers)
	for s := 0; s < cfg.shards; s++ {
		for j := 0; j < cfg.followers; j++ {
			f, err := startShardFollower(cfg.killConfig, front.url, s, j)
			if err != nil {
				return fmt.Errorf("start follower %d of shard %d: %w", j, s, err)
			}
			daemons = append(daemons, f)
			followers = append(followers, f)
		}
	}
	if err := waitEligible(front.url, cfg.shards, cfg.followers, 30*time.Second); err != nil {
		return err
	}

	// Per-follower phases: each follower's own read capacity, measured
	// directly (its surface is the daemon surface — same endpoints, same
	// bodies).
	for i, f := range followers {
		roles = append(roles, fmt.Sprintf("follower-%d-%d", i/cfg.followers, i%cfg.followers))
		phases = append(phases, measureReads(
			httpTarget{base: f.url, client: &http.Client{Timeout: 10 * time.Second}},
			ids, cfg.readers, cfg.duration))
	}

	// Routed phase: the same mix through the front end with the balancers
	// live. Not part of the aggregate (front end and followers share this
	// machine's core, so the proxy path prices contention, not capacity) —
	// it proves the routing actually spreads reads, which the proxied
	// counter below asserts.
	routed := measureReads(frontTgt, ids, cfg.readers, cfg.duration)
	ri, err := fetchRouting(front.url)
	if err != nil {
		return err
	}
	var proxied, fallbacks int64
	for _, s := range ri.Shards {
		proxied += s.Proxied
		fallbacks += s.Fallbacks
	}
	if proxied == 0 {
		return fmt.Errorf("routed phase proxied no reads to any follower (fallbacks %d): %+v", fallbacks, ri)
	}

	rep := routedReport{
		Mode:              fmt.Sprintf("routed-%dx%d", cfg.shards, cfg.followers),
		PhaseDuration:     cfg.duration.Seconds(),
		Readers:           cfg.readers,
		Queue:             cfg.queue,
		Shards:            cfg.shards,
		FollowersPerShard: cfg.followers,
		RoutedReads:       routed,
		ProxiedReads:      proxied,
		FallbackReads:     fallbacks,
	}
	for i := range phases {
		rep.Endpoints = append(rep.Endpoints, replicaEndpoint{Role: roles[i], Reads: phases[i]})
		rep.AggregateReadQPS += phases[i].QPS
	}
	if phases[0].QPS > 0 {
		rep.ScalingOverLeader = rep.AggregateReadQPS / phases[0].QPS
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "schedload: %s(%s) procs=%d queue=%d readers=%d phase=%s mode=%s (%d shards × %d followers, GOMAXPROCS=1 each, per-process phases)\n",
		cfg.kind, cfg.policy, cfg.procs, cfg.queue, cfg.readers, cfg.duration, rep.Mode, cfg.shards, cfg.followers)
	for i := range phases {
		printClass(out, roles[i], phases[i])
	}
	fmt.Fprintf(out, "  aggregate read capacity %.1f QPS = %.2fx leader-only\n",
		rep.AggregateReadQPS, rep.ScalingOverLeader)
	printClass(out, "routed", routed)
	fmt.Fprintf(out, "  routed phase: %d reads proxied to followers, %d leader fallbacks\n", proxied, fallbacks)
	return nil
}

// quorumBenchConfig parameterizes the ack-quorum write sweep.
type quorumBenchConfig struct {
	killConfig
	quorum   int // sweep levels 0..quorum
	duration time.Duration
	jsonOut  bool
}

// quorumLevel is one level's measurement.
type quorumLevel struct {
	Quorum   int        `json:"quorum"`
	Writes   classStats `json:"writes"`
	CostOver float64    `json:"cost_over_level0"` // 1 - QPS/QPS(level 0)
}

// quorumReport is the machine-readable form of one -ack-quorum sweep.
type quorumReport struct {
	Mode      string        `json:"mode"`
	Duration  float64       `json:"duration_s"`
	Writers   int           `json:"writers"`
	Followers int           `json:"followers"`
	Fsync     bool          `json:"fsync"`
	Levels    []quorumLevel `json:"levels"`
}

func runQuorumBench(cfg quorumBenchConfig, out io.Writer) error {
	if cfg.quorum < 1 {
		return fmt.Errorf("quorum sweep needs -ack-quorum of at least 1")
	}
	if cfg.duration <= 0 {
		return fmt.Errorf("quorum sweep needs a positive duration")
	}
	rep := quorumReport{
		Mode:      fmt.Sprintf("quorum-sweep-%d", cfg.quorum),
		Duration:  cfg.duration.Seconds(),
		Writers:   cfg.writers,
		Followers: cfg.quorum,
		Fsync:     cfg.fsync,
	}
	for q := 0; q <= cfg.quorum; q++ {
		qps, err := measureQuorumLevel(cfg, q)
		if err != nil {
			return fmt.Errorf("quorum level %d: %w", q, err)
		}
		lvl := quorumLevel{Quorum: q, Writes: qps}
		if q > 0 && rep.Levels[0].Writes.QPS > 0 {
			lvl.CostOver = 1 - qps.QPS/rep.Levels[0].Writes.QPS
		}
		rep.Levels = append(rep.Levels, lvl)
		if !cfg.jsonOut {
			if q == 0 {
				fmt.Fprintf(out, "schedload quorum sweep: %s(%s) procs=%d writers=%d duration=%s fsync=%v followers=%d\n",
					cfg.kind, cfg.policy, cfg.procs, cfg.writers, cfg.duration, cfg.fsync, cfg.quorum)
				printClass(out, "q=0", qps)
			} else {
				fmt.Fprintf(out, "  q=%-4d %8d ops  %10.1f QPS  p50=%.0fµs p99=%.0fµs  errors=%d  (cost %.1f%%)\n",
					q, qps.Ops, qps.QPS, qps.P50, qps.P99, qps.Errs, 100*lvl.CostOver)
			}
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return nil
}

// measureQuorumLevel boots a fresh leader at ack-quorum q with the full
// follower fleet behind it and measures closed-loop write QPS. The journal
// directory is fresh per level so earlier levels' history is not replayed
// into later ones.
func measureQuorumLevel(cfg quorumBenchConfig, q int) (classStats, error) {
	dir, err := os.MkdirTemp("", "schedload-quorum-*")
	if err != nil {
		return classStats{}, err
	}
	defer os.RemoveAll(dir)

	extra := []string{}
	if q > 0 {
		extra = append(extra, "-ack-quorum", strconv.Itoa(q), "-ack-quorum-timeout", "10s")
	}
	leader, err := startDaemon(cfg.killConfig, dir, extra...)
	if err != nil {
		return classStats{}, err
	}
	daemons := []*daemon{leader}
	defer func() {
		for _, d := range daemons {
			d.sigkill()
		}
	}()
	for j := 0; j < cfg.quorum; j++ {
		f, err := startDaemon(cfg.killConfig, "",
			"-follow", leader.url,
			"-follower-id", fmt.Sprintf("q-%d", j),
			"-replica-poll", "1ms",
			"-replica-wait", "500ms")
		if err != nil {
			return classStats{}, fmt.Errorf("start follower %d: %w", j, err)
		}
		daemons = append(daemons, f)
	}
	// Every follower must be registered and caught up before the clock
	// starts; a level measured during catch-up would price the backlog. The
	// probe write gives them a first sequence to reach (and, at q > 0,
	// proves the quorum path acks before the clock starts).
	if err := probeSubmit(leader.url); err != nil {
		return classStats{}, fmt.Errorf("probe write: %w", err)
	}
	for j, f := range daemons[1:] {
		if err := waitCaughtUp(f.url, 1, 30*time.Second); err != nil {
			return classStats{}, fmt.Errorf("follower %d: %w", j, err)
		}
	}

	stopAt := time.Now().Add(cfg.duration)
	cl := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	writeLat := make([][]time.Duration, cfg.writers)
	writeErr := make([]int, cfg.writers)
	for w := 0; w < cfg.writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, 1<<12)
			for i := 0; time.Now().Before(stopAt); i++ {
				body, _ := json.Marshal(map[string]any{
					"width": 1 + i%8, "runtime": 10_000, "user": 1 + (w*31+i)%200,
				})
				t0 := time.Now()
				code, _, err := (httpTarget{base: leader.url, client: cl}).do("POST", "/v1/jobs", body)
				if err != nil || code != http.StatusCreated {
					writeErr[w]++
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			writeLat[w] = lat
		}()
	}
	wg.Wait()
	cs := summarize(writeLat, writeErr, cfg.duration)
	if cs.Errs > 0 {
		return cs, fmt.Errorf("%d write(s) failed at quorum %d (timeout too tight or follower fell over)", cs.Errs, q)
	}
	return cs, nil
}

// runQuorumDrill is the quorum crash drill (see the package comment and
// scripts/quorum-smoke.sh). Topology per cycle: one federation front end
// (-shards 2 -ack-quorum 1 -read-route replica), two HTTP followers per
// shard. Mid-burst a follower is SIGKILLed; the burst's acknowledged
// writes must survive in the shard journals, the shard's quorum counters
// must show no degraded or rejected write (every ack was a true quorum
// ack through the survivor), and a fresh follower replaces the victim for
// the next cycle.
func runQuorumDrill(cfg killConfig, out io.Writer) error {
	const shards, perShard = 2, 2
	if cfg.iters < 1 {
		return fmt.Errorf("quorum drill needs at least one iteration")
	}
	if cfg.dir == "" {
		dir, err := os.MkdirTemp("", "schedload-quorum-drill-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.dir = dir
	}
	fmt.Fprintf(out, "schedload quorum drill: %d-shard federation, %d followers/shard, ack-quorum 1, %s(%s) procs=%d writers=%d burst=%s fsync=%v journals=%s/shard-*\n",
		shards, perShard, cfg.kind, cfg.policy, cfg.procs, cfg.writers, cfg.burst, cfg.fsync, cfg.dir)

	front, err := startDaemon(cfg, cfg.dir,
		"-shards", strconv.Itoa(shards),
		"-ack-quorum", "1",
		"-ack-quorum-timeout", "10s",
		"-read-route", "replica")
	if err != nil {
		return err
	}
	defer front.sigkill()

	followers := make([][]*daemon, shards)
	nf := 0
	startF := func(s int) (*daemon, error) {
		nf++
		return startShardFollower(cfg, front.url, s, nf)
	}
	defer func() {
		for _, fs := range followers {
			for _, f := range fs {
				f.sigkill()
			}
		}
	}()
	for s := 0; s < shards; s++ {
		for j := 0; j < perShard; j++ {
			f, err := startF(s)
			if err != nil {
				return fmt.Errorf("start follower %d of shard %d: %w", j, s, err)
			}
			followers[s] = append(followers[s], f)
		}
	}
	if err := waitEligible(front.url, shards, perShard, 30*time.Second); err != nil {
		return err
	}

	totalAcked := 0
	for i := 1; i <= cfg.iters; i++ {
		victimShard := (i - 1) % shards
		victim := followers[victimShard][0]

		// SIGKILL the victim follower mid-burst. Writes must keep
		// acknowledging: shard victimShard's quorum of 1 is satisfiable by
		// its surviving follower, and the dead follower's still-TTL-live
		// registry entry can never vouch for sequences it did not apply.
		killAt := time.AfterFunc(cfg.burst/3, func() { victim.sigkill() })
		acks := burstWrites(front, cfg, cfg.burst)
		killAt.Stop()
		victim.sigkill() // idempotent; guarantees it is dead even on a short burst
		if len(acks.submitted) == 0 {
			return fmt.Errorf("cycle %d: no write was acknowledged; lengthen -burst", i)
		}
		// Post-kill ack proof: a probe write through the front end must
		// still acknowledge on both shards' quorums.
		if err := probeSubmit(front.url); err != nil {
			return fmt.Errorf("cycle %d: front end stopped acking writes after follower kill: %w", i, err)
		}

		// Split the acknowledged IDs by owning shard (IDs ≡ s+1 mod shards)
		// and require every one present in that shard's journal.
		perShardAcks := make([]*ackLog, shards)
		for s := range perShardAcks {
			perShardAcks[s] = &ackLog{}
		}
		shardOf := func(id int) int { return (id - 1 + shards) % shards }
		for _, id := range acks.submitted {
			s := shardOf(id)
			perShardAcks[s].submitted = append(perShardAcks[s].submitted, id)
		}
		for _, id := range acks.cancelled {
			s := shardOf(id)
			perShardAcks[s].cancelled = append(perShardAcks[s].cancelled, id)
		}
		for s := 0; s < shards; s++ {
			shadow, _, err := shadowReplay(cfg, fed.ShardDir(cfg.dir, s))
			if err != nil {
				return fmt.Errorf("cycle %d: shard %d: %w", i, s, err)
			}
			if err := verifyAcks(shadow.Current(), perShardAcks[s]); err != nil {
				return fmt.Errorf("cycle %d: shard %d: %w", i, s, err)
			}
		}

		// Every ack must have been a true quorum ack: no degrade, no
		// rejection, on either shard.
		for s := 0; s < shards; s++ {
			ri, err := fetchShardReplication(front.url, s)
			if err != nil {
				return fmt.Errorf("cycle %d: %w", i, err)
			}
			if ri.AckQuorum != 1 {
				return fmt.Errorf("cycle %d: shard %d reports ack quorum %d, want 1", i, s, ri.AckQuorum)
			}
			if ri.QuorumDegraded != 0 || ri.QuorumRejected != 0 {
				return fmt.Errorf("cycle %d: shard %d quorum not clean: %d degraded, %d rejected",
					i, s, ri.QuorumDegraded, ri.QuorumRejected)
			}
		}

		// Replace the victim so the next cycle starts at full strength.
		replacement, err := startF(victimShard)
		if err != nil {
			return fmt.Errorf("cycle %d: replace follower: %w", i, err)
		}
		followers[victimShard] = append(followers[victimShard][1:], replacement)
		if err := waitEligible(front.url, shards, perShard, 30*time.Second); err != nil {
			return fmt.Errorf("cycle %d: %w", i, err)
		}

		totalAcked += len(acks.submitted) + len(acks.cancelled)
		fmt.Fprintf(out, "cycle %d: follower of shard %d killed mid-burst, %d submits + %d cancels acknowledged, quorum clean on both shards, no acknowledged write lost\n",
			i, victimShard, len(acks.submitted), len(acks.cancelled))
	}
	fmt.Fprintf(out, "quorum drill: %d/%d follower-kill cycles clean, %d acknowledged writes, zero degraded or rejected quorum acks\n",
		cfg.iters, cfg.iters, totalAcked)
	return nil
}
