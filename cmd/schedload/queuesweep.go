package main

// The -queue-sweep mode: measure sustained write throughput as a function
// of standing queue depth. Before the scheduler's pass memo (DESIGN.md §15)
// and delta snapshot publication (PERFORMANCE.md §11), every acknowledged
// submit paid a scheduling pass and a snapshot rebuild proportional to the
// backlog, so the QPS-vs-depth curve fell roughly as 1/depth; with the
// incremental machinery the curve must stay flat. The sweep is the
// acceptance experiment recorded in BENCH_PR10.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// queueSweepDepths is the standing-queue ladder the sweep walks.
var queueSweepDepths = []int{64, 128, 256, 512, 1024}

// queueSweepConfig carries the per-depth run parameters (the §8
// writer-dominant protocol is -readers 0 -writers 16).
type queueSweepConfig struct {
	procs    int
	kind     string
	policy   string
	readers  int
	writers  int
	duration time.Duration
	mailbox  bool
	jsonOut  bool
}

// depthPoint is one row of the sweep, in the ledger's field names.
type depthPoint struct {
	Queue      int     `json:"queue"`
	WriteOps   int     `json:"write_ops"`
	WriteQPS   float64 `json:"write_qps"`
	WriteP50us float64 `json:"write_p50_us"`
	WriteP99us float64 `json:"write_p99_us"`
	ReadQPS    float64 `json:"read_qps,omitempty"`
	Errors     int     `json:"errors,omitempty"`
}

// queueSweepReport is the machine-readable form of the whole sweep.
type queueSweepReport struct {
	Mode     string       `json:"mode"`
	Duration float64      `json:"duration_s"`
	Readers  int          `json:"readers"`
	Writers  int          `json:"writers"`
	Sweep    []depthPoint `json:"sweep"`
}

// runQueueSweep self-hosts one fresh daemon per depth (each point starts
// from an empty history, so depths are compared like-for-like) and reuses
// the standard measurement path by re-entering run with a synthesized
// argument list.
func runQueueSweep(cfg queueSweepConfig, out io.Writer) error {
	rep := queueSweepReport{
		Mode:     "snapshot",
		Duration: cfg.duration.Seconds(),
		Readers:  cfg.readers,
		Writers:  cfg.writers,
	}
	if cfg.mailbox {
		rep.Mode = "mailbox"
	}
	for _, depth := range queueSweepDepths {
		args := []string{
			"-procs", strconv.Itoa(cfg.procs),
			"-sched", cfg.kind,
			"-policy", cfg.policy,
			"-queue", strconv.Itoa(depth),
			"-readers", strconv.Itoa(cfg.readers),
			"-writers", strconv.Itoa(cfg.writers),
			"-duration", cfg.duration.String(),
			"-json",
		}
		if cfg.mailbox {
			args = append(args, "-mailbox")
		}
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			return fmt.Errorf("queue-sweep depth %d: %w", depth, err)
		}
		var r report
		if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
			return fmt.Errorf("queue-sweep depth %d: parse report: %w", depth, err)
		}
		rep.Sweep = append(rep.Sweep, depthPoint{
			Queue:      depth,
			WriteOps:   r.Writes.Ops,
			WriteQPS:   r.Writes.QPS,
			WriteP50us: r.Writes.P50,
			WriteP99us: r.Writes.P99,
			ReadQPS:    r.Reads.QPS,
			Errors:     r.Writes.Errs + r.Reads.Errs,
		})
		if !cfg.jsonOut {
			fmt.Fprintf(out, "  queue=%-5d writes %8d ops %10.1f QPS  p50=%.0fµs p99=%.0fµs\n",
				depth, r.Writes.Ops, r.Writes.QPS, r.Writes.P50, r.Writes.P99)
		}
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	base := rep.Sweep[0].WriteQPS
	last := rep.Sweep[len(rep.Sweep)-1].WriteQPS
	if base > 0 {
		fmt.Fprintf(out, "queue-sweep: write QPS at depth %d is %.2fx depth %d\n",
			queueSweepDepths[len(queueSweepDepths)-1], last/base, queueSweepDepths[0])
	}
	return nil
}
