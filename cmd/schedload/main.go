// Command schedload is a closed-loop load generator for the scheduling
// daemon: it seeds a busy machine with a standing queue, then hammers the
// service with concurrent reader and writer goroutines for a fixed duration
// and reports sustained throughput and latency percentiles per class.
//
//	schedload -readers 8 -writers 1 -duration 5s
//	schedload -mailbox                      # the pre-snapshot baseline
//	schedload -addr 127.0.0.1:8080 -queue 0 # aim at a live daemon
//	schedload -data-dir /tmp/wal            # WAL-on (A/B vs the same run without)
//	schedload -kill -schedd ./schedd        # SIGKILL a real daemon mid-burst
//	schedload -shards 8 -readers 0 -writers 16   # federated write scaling
//	schedload -kill -shards 4 -schedd ./schedd   # SIGKILL one shard of four
//	schedload -replicas 2 -schedd ./schedd       # leader + 2 read replicas, read QPS
//	schedload -promote -schedd ./schedd          # leader-kill → follower-promotes drill
//
// Crash mode (-kill) spawns a real schedd with a journal, hammers it with
// acknowledged writes, SIGKILLs it mid-burst, and verifies recovery two
// ways: an in-process shadow replay of the dead daemon's journal, and the
// restarted daemon's own recovery — both must land on the same state hash,
// and every acknowledged write must survive. See scripts/crash-smoke.sh.
// With -shards N the crash drill runs against a process-per-shard
// federation (per-shard journals in the fed.ShardDir layout, job IDs in
// per-shard congruence classes): one shard is SIGKILLed per iteration while
// its siblings must keep acknowledging writes, and the victim must recover
// to the shadow replay's hash.
//
// With -shards N (no -kill) the self-hosted daemon is an in-process
// federation front end over N shards of -procs processors each, routed by
// -route; the write-scaling table in PERFORMANCE.md §8 comes from sweeping
// -shards with -readers 0.
//
// Self-hosted runs (the default) drive the daemon's HTTP handler in
// process, so the numbers measure the service itself — snapshot rendering,
// forecast memoization, mailbox batching — rather than kernel sockets.
// Running once with -mailbox and once without on the same machine is the
// A/B experiment behind the read-path speedup recorded in BENCH_PR5.json.
//
// The reader mix models real polling traffic: mostly per-job status probes
// (every client polls its own job), a steady trickle of health checks and
// metric scrapes, and occasional whole-queue listings.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/fed"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
}

// target abstracts where requests go: the in-process handler for
// self-hosted runs, a real HTTP endpoint for -addr runs. The response body
// comes back so the seeding path can read the assigned job IDs (a
// federation hands out IDs in per-shard congruence classes, so they cannot
// be guessed from the submission count).
type target interface {
	do(method, path string, body []byte) (int, []byte, error)
}

// handlerTarget drives an http.Handler directly — no sockets, no client
// pooling, just the service's own request cost.
type handlerTarget struct{ h http.Handler }

func (t handlerTarget) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, httptest.NewRequest(method, path, rd))
	return rec.Code, rec.Body.Bytes(), nil
}

// httpTarget talks to a live daemon over TCP.
type httpTarget struct {
	base   string
	client *http.Client
}

func (t httpTarget) do(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, t.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// classStats aggregates one request class (reads or writes).
type classStats struct {
	Ops  int     `json:"ops"`
	QPS  float64 `json:"qps"`
	P50  float64 `json:"p50_us"`
	P99  float64 `json:"p99_us"`
	Errs int     `json:"errors"`
}

// report is the machine-readable form of one run (-json).
type report struct {
	Mode     string     `json:"mode"`
	Duration float64    `json:"duration_s"`
	Readers  int        `json:"readers"`
	Writers  int        `json:"writers"`
	Queue    int        `json:"queue"`
	Shards   int        `json:"shards,omitempty"`
	Route    string     `json:"route,omitempty"`
	Reads    classStats `json:"reads"`
	Writes   classStats `json:"writes"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr     = fs.String("addr", "", "target a running daemon at host:port; empty self-hosts one in process")
		procs    = fs.Int("procs", 64, "machine size for the self-hosted daemon")
		kind     = fs.String("sched", "easy", "scheduler kind for the self-hosted daemon")
		policy   = fs.String("policy", "FCFS", "queue priority policy for the self-hosted daemon")
		queue    = fs.Int("queue", 256, "standing queue depth to seed before measuring")
		readers  = fs.Int("readers", 8, "concurrent reader goroutines")
		writers  = fs.Int("writers", 1, "concurrent writer (submit) goroutines")
		duration = fs.Duration("duration", 5*time.Second, "measurement window")
		mailbox  = fs.Bool("mailbox", false, "self-hosted only: route reads through the scheduler mailbox (the pre-snapshot baseline)")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON")
		dataDir  = fs.String("data-dir", "", "self-hosted: journal directory (WAL on); empty runs in-memory — the A/B for the durability overhead. In -kill mode, the journal directory shared across crashes")
		fsyncOn  = fs.Bool("fsync", false, "journal with one fsync per commit batch")
		kill     = fs.Bool("kill", false, "crash mode: spawn a real schedd, SIGKILL it mid-burst, restart, verify no acknowledged write was lost")
		schedd   = fs.String("schedd", "schedd", "kill mode: path to the schedd binary")
		iters    = fs.Int("iters", 3, "kill mode: crash/restart iterations")
		burst    = fs.Duration("burst", 300*time.Millisecond, "kill mode: write burst before each SIGKILL")
		shards   = fs.Int("shards", 1, "self-hosted: federate this many shards of -procs processors each behind one front end; in -kill mode, spawn a process-per-shard federation and crash one shard per iteration")
		routeF   = fs.String("route", "width", "federation routing policy: hash or width")
		replicas = fs.Int("replicas", -1, "read-replica bench: spawn a real leader plus this many journal-tailing followers (GOMAXPROCS=1 each) and measure each process's read capacity in sequential phases; 0 is the single-daemon baseline; needs -schedd")
		wrRate   = fs.Int("write-rate", 20, "replica bench: paced writes/second across all writers during every phase; 0 runs the writers closed-loop")
		promote  = fs.Bool("promote", false, "failover drill: SIGKILL a real leader mid-burst, require its follower to self-promote with no acknowledged write lost; needs -schedd")
		readRt   = fs.String("read-route", "", "routed-read bench: spawn a real front end with -read-route replica plus -followers followers per shard and measure per-process read capacity in sequential phases; needs -schedd")
		follPer  = fs.Int("followers", 2, "routed-read bench: followers per shard")
		ackQ     = fs.Int("ack-quorum", -1, "quorum sweep: measure write QPS at every ack-quorum level 0..N with N real followers attached; needs -schedd")
		qDrill   = fs.Bool("quorum-drill", false, "quorum crash drill: 2-shard federation with ack-quorum 1 and 2 followers per shard, SIGKILL one follower mid-burst each cycle, require every acknowledged write durable and zero degraded quorum acks; needs -schedd")
		qSweep   = fs.Bool("queue-sweep", false, "sweep the standing queue depth 64..1024 (fresh self-hosted daemon per depth) and report write QPS per depth; run with -readers 0 -writers 16 for the PERFORMANCE.md §11 acceptance curve")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, have %d", *shards)
	}
	if *qSweep {
		if *kill || *addr != "" || *promote || *replicas >= 0 || *readRt != "" || *ackQ >= 0 || *qDrill || *shards > 1 || *dataDir != "" {
			return fmt.Errorf("-queue-sweep self-hosts a fresh single daemon per depth: drop the other modes")
		}
		return runQueueSweep(queueSweepConfig{
			procs:    *procs,
			kind:     *kind,
			policy:   *policy,
			readers:  *readers,
			writers:  *writers,
			duration: *duration,
			mailbox:  *mailbox,
			jsonOut:  *jsonOut,
		}, out)
	}
	if *readRt != "" || *ackQ >= 0 || *qDrill {
		if *kill || (*shards > 1 && *readRt == "") || *mailbox || *addr != "" || *promote || *replicas >= 0 {
			return fmt.Errorf("quorum/routing modes run their own real daemons: drop -kill/-mailbox/-addr/-promote/-replicas")
		}
		n := 0
		for _, on := range []bool{*readRt != "", *ackQ >= 0, *qDrill} {
			if on {
				n++
			}
		}
		if n > 1 {
			return fmt.Errorf("-read-route, -ack-quorum, and -quorum-drill are separate modes")
		}
		if *readRt != "" && *readRt != "replica" {
			return fmt.Errorf("-read-route %q: the bench only routes to replicas (want replica)", *readRt)
		}
		cfg := killConfig{
			scheddBin: *schedd,
			dir:       *dataDir,
			procs:     *procs,
			kind:      *kind,
			policy:    *policy,
			fsync:     *fsyncOn,
			writers:   max(*writers, 1),
			iters:     *iters,
			burst:     *burst,
		}
		switch {
		case *qDrill:
			return runQuorumDrill(cfg, out)
		case *ackQ >= 0:
			return runQuorumBench(quorumBenchConfig{
				killConfig: cfg,
				quorum:     *ackQ,
				duration:   *duration,
				jsonOut:    *jsonOut,
			}, out)
		default:
			return runRoutedBench(routedBenchConfig{
				killConfig: cfg,
				shards:     *shards,
				followers:  *follPer,
				queue:      *queue,
				readers:    *readers,
				duration:   *duration,
				jsonOut:    *jsonOut,
			}, out)
		}
	}
	if *promote || *replicas >= 0 {
		if *kill || *shards > 1 || *mailbox || *addr != "" {
			return fmt.Errorf("replica modes run their own real daemons: drop -kill/-shards/-mailbox/-addr")
		}
		if *promote && *replicas >= 0 {
			return fmt.Errorf("-promote and -replicas are separate modes")
		}
		cfg := killConfig{
			scheddBin: *schedd,
			dir:       *dataDir,
			procs:     *procs,
			kind:      *kind,
			policy:    *policy,
			fsync:     *fsyncOn,
			writers:   max(*writers, 1),
			iters:     *iters,
			burst:     *burst,
		}
		if *promote {
			return runPromote(cfg, out)
		}
		return runReplicaBench(replicaBenchConfig{
			killConfig: cfg,
			replicas:   *replicas,
			queue:      *queue,
			readers:    *readers,
			writers:    *writers,
			writeRate:  *wrRate,
			duration:   *duration,
			jsonOut:    *jsonOut,
		}, out)
	}
	if *kill {
		cfg := killConfig{
			scheddBin: *schedd,
			dir:       *dataDir,
			procs:     *procs,
			kind:      *kind,
			policy:    *policy,
			fsync:     *fsyncOn,
			writers:   max(*writers, 1),
			iters:     *iters,
			burst:     *burst,
		}
		if *shards > 1 {
			return runKillFed(cfg, *shards, out)
		}
		return runKill(cfg, out)
	}
	if *readers < 0 || *writers < 0 || *readers+*writers < 1 || *duration <= 0 {
		return fmt.Errorf("need at least one reader or writer and a positive duration")
	}

	var tgt target
	mode := "snapshot"
	if *mailbox {
		mode = "mailbox"
	}
	if *addr != "" {
		if *mailbox {
			return fmt.Errorf("-mailbox only applies to the self-hosted daemon")
		}
		mode = "remote"
		tgt = httpTarget{base: "http://" + *addr, client: &http.Client{Timeout: 10 * time.Second}}
	} else {
		opts := serve.Options{
			Procs:        *procs,
			Scheduler:    *kind,
			Policy:       *policy,
			Speed:        1e-9, // hold virtual time still so the load is the only variable
			MailboxReads: *mailbox,
		}
		walMode := ""
		if *dataDir != "" {
			// WAL-on run: every write is journaled (group-committed per
			// mailbox batch) before it is acknowledged. Compare writes QPS
			// against the same invocation without -data-dir.
			walMode = "+wal"
			if *fsyncOn {
				walMode += "+fsync"
			}
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		if *shards > 1 {
			// Federated self-host: N shards behind one scatter-gather front
			// end, each shard its own scheduler goroutine (and journal
			// directory when -data-dir is set). Sweeping -shards with
			// -readers 0 is the write-scaling experiment in BENCH_PR7.json.
			if *mailbox {
				cancel()
				return fmt.Errorf("-mailbox cannot combine with -shards")
			}
			f, err := fed.New(fed.Options{Shards: *shards, Route: *routeF, Shard: opts, DataDir: *dataDir})
			if err != nil {
				cancel()
				return err
			}
			mode = fmt.Sprintf("fed-%d-%s%s", *shards, f.Router().Name(), walMode)
			go func() { done <- f.Run(ctx) }()
			defer func() {
				cancel()
				<-done
				f.Close()
			}()
			tgt = handlerTarget{h: f.Handler()}
		} else {
			opts.Durability = serve.DurabilityOptions{Dir: *dataDir, Fsync: *fsyncOn}
			mode += walMode
			srv, err := serve.New(opts)
			if err != nil {
				cancel()
				return err
			}
			go func() { done <- srv.Run(ctx) }()
			defer func() {
				cancel()
				<-done
				srv.Close()
			}()
			tgt = handlerTarget{h: srv.Handler()}
		}
	}

	// Seed: one full-width job per shard pins the whole federation, then a
	// standing queue builds the state every read has to render (and every
	// write's scheduling pass has to scan). The assigned IDs come from the
	// responses — a federation hands them out in per-shard congruence
	// classes, so they cannot be derived from the submission count.
	ids := make([]int, 0, *queue+*shards)
	seed := func(width int, runtime int64, user int) error {
		body, _ := json.Marshal(map[string]any{"width": width, "runtime": runtime, "user": user})
		code, data, err := tgt.do("POST", "/v1/jobs", body)
		if err != nil {
			return err
		}
		if code != http.StatusCreated {
			return fmt.Errorf("seed submit: HTTP %d", code)
		}
		var v struct {
			ID int `json:"id"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return fmt.Errorf("seed submit: %w", err)
		}
		ids = append(ids, v.ID)
		return nil
	}
	if *queue > 0 {
		// Width routing lands exactly one pin per shard: every pin fills an
		// idle shard, which the next placement then sees as busy.
		for s := 0; s < *shards; s++ {
			if err := seed(*procs, 1_000_000, s+1); err != nil {
				return err
			}
		}
		for i := 0; i < *queue; i++ {
			w := 1 + (i%16)*4
			if w > *procs {
				w = *procs
			}
			if err := seed(w, int64(1000+100*i), 1+i%200); err != nil {
				return err
			}
		}
	}
	if len(ids) == 0 {
		ids = []int{1} // remote daemon with unknown state: poll job 1
	}

	stopAt := time.Now().Add(*duration)
	var wg sync.WaitGroup
	readLat := make([][]time.Duration, *readers)
	readErr := make([]int, *readers)
	for r := 0; r < *readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, 1<<16)
			for i := 0; time.Now().Before(stopAt); i++ {
				// 80% status, 10% healthz, 5% queue, 5% metrics.
				path := fmt.Sprintf("/v1/jobs/%d", ids[i%len(ids)])
				switch i % 20 {
				case 0:
					path = "/v1/queue"
				case 1:
					path = "/metrics"
				case 2, 3:
					path = "/healthz"
				}
				t0 := time.Now()
				code, _, err := tgt.do("GET", path, nil)
				if err != nil || code != http.StatusOK {
					readErr[r]++
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			readLat[r] = lat
		}()
	}
	writeLat := make([][]time.Duration, *writers)
	writeErr := make([]int, *writers)
	for w := 0; w < *writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lat := make([]time.Duration, 0, 1<<12)
			for i := 0; time.Now().Before(stopAt); i++ {
				// Each writer cycles through its own user slice so hash
				// routing spreads the stream across shards.
				body, _ := json.Marshal(map[string]any{
					"width": 1 + i%8, "runtime": 10_000, "user": 1 + (w*31+i)%200,
				})
				t0 := time.Now()
				code, _, err := tgt.do("POST", "/v1/jobs", body)
				if err != nil || code != http.StatusCreated {
					writeErr[w]++
					continue
				}
				lat = append(lat, time.Since(t0))
			}
			writeLat[w] = lat
		}()
	}
	wg.Wait()

	rep := report{
		Mode:     mode,
		Duration: duration.Seconds(),
		Readers:  *readers,
		Writers:  *writers,
		Queue:    *queue,
		Reads:    summarize(readLat, readErr, *duration),
		Writes:   summarize(writeLat, writeErr, *duration),
	}
	if *shards > 1 {
		rep.Shards, rep.Route = *shards, *routeF
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprintf(out, "schedload: %s(%s) procs=%d queue=%d readers=%d writers=%d duration=%s mode=%s\n",
		*kind, *policy, *procs, *queue, *readers, *writers, duration, mode)
	printClass(out, "reads", rep.Reads)
	printClass(out, "writes", rep.Writes)
	return nil
}

// summarize merges per-worker latency samples into one class report.
func summarize(lats [][]time.Duration, errs []int, window time.Duration) classStats {
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	var nerr int
	for _, e := range errs {
		nerr += e
	}
	cs := classStats{Ops: len(all), Errs: nerr}
	if len(all) == 0 {
		return cs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cs.QPS = float64(len(all)) / window.Seconds()
	cs.P50 = float64(percentile(all, 0.50)) / float64(time.Microsecond)
	cs.P99 = float64(percentile(all, 0.99)) / float64(time.Microsecond)
	return cs
}

// percentile reads quantile q from sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func printClass(out io.Writer, name string, cs classStats) {
	if cs.Ops == 0 && cs.Errs == 0 {
		fmt.Fprintf(out, "  %-6s (none)\n", name+":")
		return
	}
	fmt.Fprintf(out, "  %-6s %8d ops  %10.1f QPS  p50=%.0fµs p99=%.0fµs  errors=%d\n",
		name+":", cs.Ops, cs.QPS, cs.P50, cs.P99, cs.Errs)
}
