// Command schedctl is the command-line client for the schedd scheduling
// daemon. It mirrors the classic batch-system front-ends: submit a job,
// query its status (including the predicted start time for queued jobs),
// cancel it, and inspect the whole queue.
//
//	schedctl submit -width 16 -runtime 3600
//	schedctl stat 42
//	schedctl cancel 42
//	schedctl queue
//	schedctl info         # durability: journal position, checkpoint age
//	schedctl shards       # federation only: per-shard state table
//	schedctl replication  # leader/follower position, lag, registered followers
//	schedctl routing      # federation read routing: follower rotation, lag, ejections
//	schedctl promote      # promote a follower replica to leader
//
// The daemon address comes from -addr or the SCHEDD_ADDR environment
// variable, defaulting to http://127.0.0.1:8080.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedctl:", err)
		os.Exit(1)
	}
}

// jobView mirrors serve.JobView; schedctl decodes only what it prints.
type jobView struct {
	ID             int      `json:"id"`
	State          string   `json:"state"`
	Width          int      `json:"width"`
	Runtime        int64    `json:"runtime"`
	Estimate       int64    `json:"estimate"`
	Arrival        int64    `json:"arrival"`
	Category       string   `json:"category"`
	Start          *int64   `json:"start"`
	End            *int64   `json:"end"`
	PredictedStart *int64   `json:"predicted_start"`
	Slowdown       *float64 `json:"slowdown"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedctl", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", defaultAddr(), "schedd base URL")
	fs.Usage = func() {
		fmt.Fprintf(out, "usage: schedctl [-addr URL] <submit|stat|cancel|queue|info|shards|replication|routing|promote|health|metrics> [args]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return fmt.Errorf("missing command")
	}
	c := &client{base: strings.TrimRight(*addr, "/"), out: out}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "submit":
		return c.submit(rest)
	case "stat":
		return c.stat(rest)
	case "cancel":
		return c.cancel(rest)
	case "queue":
		return c.queue()
	case "info":
		return c.info()
	case "shards":
		return c.shards()
	case "replication":
		return c.replication()
	case "routing":
		return c.routing()
	case "promote":
		return c.promote()
	case "health":
		return c.passthrough("/healthz")
	case "metrics":
		return c.passthrough("/metrics")
	default:
		fs.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func defaultAddr() string {
	if v := os.Getenv("SCHEDD_ADDR"); v != "" {
		return v
	}
	return "http://127.0.0.1:8080"
}

type client struct {
	base string
	out  io.Writer
}

// do issues one request and decodes the JSON response into v (when
// non-nil), converting non-2xx statuses into the server's error message.
func (c *client) do(method, path string, body io.Reader, v any) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s (status %d)", e.Error, resp.StatusCode)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(data, v)
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("schedctl submit", flag.ContinueOnError)
	fs.SetOutput(c.out)
	var (
		width   = fs.Int("width", 1, "processors requested")
		runtime = fs.Int64("runtime", 60, "actual runtime in seconds (simulation ground truth)")
		est     = fs.Int64("est", 0, "user estimate in seconds (0 means exact)")
		user    = fs.Int("user", 0, "submitting user ID")
		n       = fs.Int("n", 1, "submit this many identical jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for i := 0; i < *n; i++ {
		body, _ := json.Marshal(map[string]any{
			"width": *width, "runtime": *runtime, "estimate": *est, "user": *user,
		})
		var v jobView
		if err := c.do("POST", "/v1/jobs", bytes.NewReader(body), &v); err != nil {
			return err
		}
		c.printJob(v)
	}
	return nil
}

func (c *client) stat(args []string) error {
	id, err := oneID(args)
	if err != nil {
		return err
	}
	var v jobView
	if err := c.do("GET", "/v1/jobs/"+strconv.Itoa(id), nil, &v); err != nil {
		return err
	}
	c.printJob(v)
	return nil
}

func (c *client) cancel(args []string) error {
	id, err := oneID(args)
	if err != nil {
		return err
	}
	if err := c.do("DELETE", "/v1/jobs/"+strconv.Itoa(id), nil, nil); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "job %d cancelled\n", id)
	return nil
}

func (c *client) queue() error {
	var q struct {
		Now       int64     `json:"now"`
		Scheduler string    `json:"scheduler"`
		Procs     int       `json:"procs"`
		ProcsBusy int       `json:"procs_busy"`
		Queued    []jobView `json:"queued"`
		Running   []jobView `json:"running"`
		Completed int64     `json:"completed"`
		Cancelled int64     `json:"cancelled"`
	}
	if err := c.do("GET", "/v1/queue", nil, &q); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%s  t=%d  procs %d/%d busy  completed %d  cancelled %d\n",
		q.Scheduler, q.Now, q.ProcsBusy, q.Procs, q.Completed, q.Cancelled)
	if len(q.Running) > 0 {
		fmt.Fprintf(c.out, "running (%d):\n", len(q.Running))
		for _, v := range q.Running {
			c.printJob(v)
		}
	}
	if len(q.Queued) > 0 {
		fmt.Fprintf(c.out, "queued (%d):\n", len(q.Queued))
		for _, v := range q.Queued {
			c.printJob(v)
		}
	}
	return nil
}

// info renders GET /v1/debug/durability: whether the daemon journals its
// state, where the journal stands, and how stale the last checkpoint is.
func (c *client) info() error {
	var d struct {
		Enabled          bool    `json:"enabled"`
		Dir              string  `json:"dir"`
		Fsync            bool    `json:"fsync"`
		SnapshotVersion  uint64  `json:"snapshot_version"`
		SimNow           int64   `json:"sim_now"`
		StateHash        string  `json:"state_hash"`
		Seq              uint64  `json:"seq"`
		CheckpointSeq    uint64  `json:"checkpoint_seq"`
		TailRecords      uint64  `json:"tail_records"`
		CheckpointAgeSec float64 `json:"checkpoint_age_sec"`
		Recovery         *struct {
			CheckpointSeq  uint64   `json:"checkpoint_seq"`
			CheckpointOps  int      `json:"checkpoint_ops"`
			TailRecords    int      `json:"tail_records"`
			TruncatedBytes int64    `json:"truncated_bytes"`
			Warnings       []string `json:"warnings"`
		} `json:"recovery"`
	}
	if err := c.do("GET", "/v1/debug/durability", nil, &d); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "snapshot version %d  t=%d  state hash %s\n", d.SnapshotVersion, d.SimNow, d.StateHash)
	if !d.Enabled {
		fmt.Fprintln(c.out, "durability: off (no -data-dir)")
		return nil
	}
	sync := "page-cache (process-crash safe)"
	if d.Fsync {
		sync = "fsync per commit (machine-crash safe)"
	}
	fmt.Fprintf(c.out, "durability: on  dir %s  %s\n", d.Dir, sync)
	fmt.Fprintf(c.out, "journal: seq %d  checkpoint seq %d  tail %d records\n", d.Seq, d.CheckpointSeq, d.TailRecords)
	if d.CheckpointAgeSec > 0 {
		fmt.Fprintf(c.out, "last checkpoint: %.0fs ago\n", d.CheckpointAgeSec)
	} else {
		fmt.Fprintln(c.out, "last checkpoint: never")
	}
	if r := d.Recovery; r != nil && (r.CheckpointOps > 0 || r.TailRecords > 0) {
		fmt.Fprintf(c.out, "recovered at boot: checkpoint seq %d (%d ops) + %d journal records, %d torn bytes truncated\n",
			r.CheckpointSeq, r.CheckpointOps, r.TailRecords, r.TruncatedBytes)
		for _, w := range r.Warnings {
			fmt.Fprintf(c.out, "recovery warning: %s\n", w)
		}
	}
	return nil
}

// shards renders GET /v1/shards (federated daemons only) as one row per
// cluster shard.
func (c *client) shards() error {
	var rows []struct {
		Shard      int    `json:"shard"`
		Scheduler  string `json:"scheduler"`
		Procs      int    `json:"procs"`
		ProcsBusy  int    `json:"procs_busy"`
		QueueDepth int    `json:"queue_depth"`
		Running    int    `json:"running"`
		Pending    int    `json:"pending"`
		Version    uint64 `json:"version"`
		Now        int64  `json:"now"`
		Submitted  int64  `json:"submitted"`
		Completed  int64  `json:"completed"`
		Draining   bool   `json:"draining"`
	}
	if err := c.do("GET", "/v1/shards", nil, &rows); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "%-6s %-14s %10s %7s %8s %9s %10s %10s %8s\n",
		"shard", "scheduler", "busy", "queued", "running", "pending", "submitted", "completed", "version")
	for _, r := range rows {
		state := ""
		if r.Draining {
			state = "  draining"
		}
		fmt.Fprintf(c.out, "%-6d %-14s %6d/%-3d %7d %8d %9d %10d %10d %8d%s\n",
			r.Shard, r.Scheduler, r.ProcsBusy, r.Procs, r.QueueDepth, r.Running, r.Pending,
			r.Submitted, r.Completed, r.Version, state)
	}
	return nil
}

// replicationInfo mirrors serve.ReplicationInfo; schedctl decodes only
// what it prints.
type replicationInfo struct {
	Role        string `json:"role"`
	Term        uint64 `json:"term"`
	Seq         uint64 `json:"seq"`
	Source      string `json:"source"`
	AppliedSeq  uint64 `json:"applied_seq"`
	LeaderSeq   uint64 `json:"leader_seq"`
	LagOps      uint64 `json:"lag_ops"`
	LagVirtual  int64  `json:"lag_virtual_time"`
	Resyncs     int64  `json:"resyncs"`
	RetainFloor uint64 `json:"retain_floor"`
	AckQuorum   int    `json:"ack_quorum"`
	QuorumDeg   int64  `json:"quorum_degraded"`
	QuorumRej   int64  `json:"quorum_rejected"`
	Followers   []struct {
		ID       string  `json:"id"`
		Addr     string  `json:"addr"`
		AckedSeq uint64  `json:"acked_seq"`
		AgeSec   float64 `json:"age_sec"`
	} `json:"followers"`
	Promoted bool `json:"promoted"`
}

func (c *client) printReplication(ri replicationInfo) {
	switch ri.Role {
	case "leader":
		line := fmt.Sprintf("leader  term %d  seq %d", ri.Term, ri.Seq)
		if ri.Promoted {
			line += "  (promoted from follower)"
		}
		fmt.Fprintln(c.out, line)
		if ri.RetainFloor > 0 {
			fmt.Fprintf(c.out, "retention floor: seq %d\n", ri.RetainFloor)
		}
		if ri.Resyncs > 0 {
			fmt.Fprintf(c.out, "full resyncs served: %d (retention lost the incremental race)\n", ri.Resyncs)
		}
		if ri.AckQuorum > 0 {
			line := fmt.Sprintf("ack quorum: %d follower(s) per write", ri.AckQuorum)
			if ri.QuorumDeg > 0 {
				line += fmt.Sprintf("  degraded acks %d", ri.QuorumDeg)
			}
			if ri.QuorumRej > 0 {
				line += fmt.Sprintf("  rejected writes %d", ri.QuorumRej)
			}
			fmt.Fprintln(c.out, line)
		}
		for _, f := range ri.Followers {
			line := fmt.Sprintf("follower %s  acked seq %d  last seen %.1fs ago", f.ID, f.AckedSeq, f.AgeSec)
			if f.Addr != "" {
				line += "  reads at " + f.Addr
			}
			fmt.Fprintln(c.out, line)
		}
	case "follower":
		fmt.Fprintf(c.out, "follower of %s  term %d\n", ri.Source, ri.Term)
		fmt.Fprintf(c.out, "applied seq %d  leader seq %d  lag %d ops, %d virtual seconds\n",
			ri.AppliedSeq, ri.LeaderSeq, ri.LagOps, ri.LagVirtual)
		if ri.Resyncs > 0 {
			fmt.Fprintf(c.out, "full resyncs: %d\n", ri.Resyncs)
		}
	default:
		fmt.Fprintln(c.out, "standalone (no journal to replicate)")
	}
}

// replication renders GET /v1/debug/replication for either role.
func (c *client) replication() error {
	var ri replicationInfo
	if err := c.do("GET", "/v1/debug/replication", nil, &ri); err != nil {
		return err
	}
	c.printReplication(ri)
	return nil
}

// routing renders GET /v1/debug/routing: the front end's read-route mode
// and, under replica routing, each shard's follower rotation.
func (c *client) routing() error {
	var info struct {
		ReadRoute string `json:"read_route"`
		Shards    []struct {
			Shard        int    `json:"shard"`
			LeaderSeq    uint64 `json:"leader_seq"`
			MaxLagOps    uint64 `json:"max_lag_ops"`
			Proxied      int64  `json:"proxied"`
			Fallbacks    int64  `json:"fallbacks"`
			Ejections    int64  `json:"ejections"`
			Readmissions int64  `json:"readmissions"`
			Followers    []struct {
				ID       string  `json:"id"`
				Addr     string  `json:"addr"`
				AckedSeq uint64  `json:"acked_seq"`
				LagOps   uint64  `json:"lag_ops"`
				AgeSec   float64 `json:"age_sec"`
				Eligible bool    `json:"eligible"`
			} `json:"followers"`
		} `json:"shards"`
	}
	if err := c.do("GET", "/v1/debug/routing", nil, &info); err != nil {
		return err
	}
	fmt.Fprintf(c.out, "read route: %s\n", info.ReadRoute)
	for _, s := range info.Shards {
		fmt.Fprintf(c.out, "shard %d  leader seq %d  max lag %d ops  proxied %d  fallbacks %d  ejections %d  readmissions %d\n",
			s.Shard, s.LeaderSeq, s.MaxLagOps, s.Proxied, s.Fallbacks, s.Ejections, s.Readmissions)
		for _, f := range s.Followers {
			state := "ejected"
			if f.Eligible {
				state = "in rotation"
			}
			fmt.Fprintf(c.out, "  follower %s  %s  acked seq %d  lag %d ops  seen %.1fs ago  %s\n",
				f.ID, f.Addr, f.AckedSeq, f.LagOps, f.AgeSec, state)
		}
	}
	return nil
}

// promote asks a follower replica to take over as leader.
func (c *client) promote() error {
	var ri replicationInfo
	if err := c.do("POST", "/v1/promote", nil, &ri); err != nil {
		return err
	}
	fmt.Fprintln(c.out, "promoted")
	c.printReplication(ri)
	return nil
}

// passthrough streams a plain endpoint (health JSON, Prometheus text).
func (c *client) passthrough(path string) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	_, err = io.Copy(c.out, resp.Body)
	return err
}

// printJob renders one job as a single line, the way qstat does.
func (c *client) printJob(v jobView) {
	line := fmt.Sprintf("job %d  %s  %dp × %ds  [%s]", v.ID, v.State, v.Width, v.Runtime, v.Category)
	switch {
	case v.State == "queued" && v.PredictedStart != nil:
		line += fmt.Sprintf("  predicted start t=%d", *v.PredictedStart)
	case v.State == "running" && v.Start != nil:
		line += fmt.Sprintf("  started t=%d", *v.Start)
	case v.State == "done" && v.End != nil:
		line += fmt.Sprintf("  finished t=%d", *v.End)
		if v.Slowdown != nil {
			line += fmt.Sprintf("  slowdown %.2f", *v.Slowdown)
		}
	}
	fmt.Fprintln(c.out, line)
}

func oneID(args []string) (int, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("expected exactly one job ID, got %d args", len(args))
	}
	id, err := strconv.Atoi(args[0])
	if err != nil {
		return 0, fmt.Errorf("bad job ID %q", args[0])
	}
	return id, nil
}
