package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/serve"
)

// testDaemon boots a serve.Server with a frozen clock behind httptest so
// the client's view of the queue is deterministic.
func testDaemon(t *testing.T) string {
	t.Helper()
	srv, err := serve.New(serve.Options{Procs: 8, Scheduler: "easy", Audit: true, Speed: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		if err := <-done; err != nil {
			t.Errorf("daemon drain: %v", err)
		}
	})
	return ts.URL
}

// ctl runs one schedctl invocation against the test daemon.
func ctl(t *testing.T, addr string, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(append([]string{"-addr", addr}, args...), &out); err != nil {
		t.Fatalf("schedctl %s: %v\noutput:\n%s", strings.Join(args, " "), err, out.String())
	}
	return out.String()
}

func TestCtlLifecycle(t *testing.T) {
	addr := testDaemon(t)

	// Fill the 8-proc machine, then submit a queued job with a forecast.
	out := ctl(t, addr, "submit", "-width", "8", "-runtime", "100")
	if !strings.Contains(out, "job 1  running") {
		t.Fatalf("submit output = %q, want running job 1", out)
	}
	out = ctl(t, addr, "submit", "-width", "4", "-runtime", "50")
	if !strings.Contains(out, "job 2  queued") || !strings.Contains(out, "predicted start t=100") {
		t.Fatalf("submit output = %q, want queued with predicted start 100", out)
	}

	out = ctl(t, addr, "stat", "2")
	if !strings.Contains(out, "job 2  queued") {
		t.Fatalf("stat output = %q", out)
	}

	out = ctl(t, addr, "queue")
	for _, want := range []string{"EASY(FCFS)", "8/8 busy", "running (1):", "queued (1):"} {
		if !strings.Contains(out, want) {
			t.Errorf("queue output missing %q:\n%s", want, out)
		}
	}

	out = ctl(t, addr, "cancel", "2")
	if !strings.Contains(out, "job 2 cancelled") {
		t.Fatalf("cancel output = %q", out)
	}

	out = ctl(t, addr, "health")
	if !strings.Contains(out, `"status":"ok"`) {
		t.Fatalf("health output = %q", out)
	}

	out = ctl(t, addr, "metrics")
	for _, want := range []string{
		"schedd_jobs_submitted_total 2",
		"schedd_jobs_cancelled_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestCtlInfo(t *testing.T) {
	addr := testDaemon(t)
	out := ctl(t, addr, "info")
	if !strings.Contains(out, "durability: off") || !strings.Contains(out, "state hash") {
		t.Fatalf("info output = %q", out)
	}
}

func TestCtlInfoDurable(t *testing.T) {
	srv, err := serve.New(serve.Options{
		Procs: 8, Scheduler: "easy", Audit: true, Speed: 1e-9,
		Durability: serve.DurabilityOptions{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		if err := <-done; err != nil {
			t.Errorf("daemon drain: %v", err)
		}
		srv.Close()
	})

	ctl(t, ts.URL, "submit", "-width", "2", "-runtime", "30")
	out := ctl(t, ts.URL, "info")
	for _, want := range []string{"durability: on", "journal: seq", "page-cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestCtlSubmitBatch(t *testing.T) {
	addr := testDaemon(t)
	out := ctl(t, addr, "submit", "-width", "2", "-runtime", "30", "-n", "3")
	if got := strings.Count(out, "job "); got != 3 {
		t.Fatalf("submit -n 3 printed %d jobs:\n%s", got, out)
	}
}

func TestCtlErrors(t *testing.T) {
	addr := testDaemon(t)
	cases := [][]string{
		{},                         // no command
		{"frobnicate"},             // unknown command
		{"stat"},                   // missing ID
		{"stat", "x"},              // bad ID
		{"stat", "99"},             // unknown job
		{"cancel", "99"},           // unknown job
		{"submit", "-width", "16"}, // wider than the machine → 400
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(append([]string{"-addr", addr}, args...), &out); err == nil {
			t.Errorf("schedctl %v succeeded, want error", args)
		}
	}
}

func TestCtlServerErrorMessage(t *testing.T) {
	addr := testDaemon(t)
	var out bytes.Buffer
	err := run([]string{"-addr", addr, "stat", "99"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown job 99") {
		t.Fatalf("error = %v, want server message about unknown job 99", err)
	}
	if !strings.Contains(err.Error(), strconv.Itoa(404)) {
		t.Fatalf("error = %v, want status 404 mentioned", err)
	}
}
