package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseBaselineFixture parses the recorded pre-overhaul benchmark
// output (the same file BENCH_PR4.json's baseline column came from).
func TestParseBaselineFixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bench_base.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	run, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Benchmarks) != 14 {
		t.Fatalf("parsed %d benchmarks, want 14", len(run.Benchmarks))
	}
	cons, ok := run.Benchmarks["BenchmarkSchedulerConservative"]
	if !ok {
		t.Fatal("BenchmarkSchedulerConservative missing")
	}
	if cons.NsPerOp != 29321027 || cons.AllocsPerOp != 21524 {
		t.Fatalf("conservative = %+v", cons)
	}
}

func TestParseStripsGomaxprocsSuffix(t *testing.T) {
	in := "BenchmarkFoo-8   \t 100\t  12.5 ns/op\t  3 B/op\t  1 allocs/op\n" +
		"BenchmarkBar/sub-16 \t 5\t 200 ns/op\n" +
		"not a benchmark line\n"
	run, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := run.Benchmarks["BenchmarkFoo"]; !ok {
		t.Fatalf("suffix not stripped: %v", run.Benchmarks)
	}
	if m := run.Benchmarks["BenchmarkBar/sub"]; m.NsPerOp != 200 {
		t.Fatalf("sub-benchmark = %+v", m)
	}
}

func TestMergeAndGate(t *testing.T) {
	base := Run{Benchmarks: map[string]Measurement{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkGone": {NsPerOp: 5},
	}}
	cur := Run{Benchmarks: map[string]Measurement{
		"BenchmarkA":   {NsPerOp: 400, AllocsPerOp: 4},
		"BenchmarkNew": {NsPerOp: 7},
	}}
	l := merge(base, cur, nil, "test")
	if e := l.Benchmarks["BenchmarkA"]; e.Speedup != 2.5 || e.BaselineNs != 1000 || e.CurrentNs != 400 {
		t.Fatalf("merged A = %+v", e)
	}
	if e := l.Benchmarks["BenchmarkGone"]; e.CurrentNs != 0 || e.BaselineNs != 5 {
		t.Fatalf("merged Gone = %+v", e)
	}
	if e := l.Benchmarks["BenchmarkNew"]; e.CurrentNs != 7 || e.Speedup != 0 {
		t.Fatalf("merged New = %+v", e)
	}

	// Within tolerance: 10% slower against 20% allowed.
	ok := Run{Benchmarks: map[string]Measurement{
		"BenchmarkA": {NsPerOp: 440}, "BenchmarkNew": {NsPerOp: 7},
	}}
	if regs, _ := gate(l, ok, 0.20); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	// Beyond tolerance on one benchmark; the other missing entirely.
	bad := Run{Benchmarks: map[string]Measurement{
		"BenchmarkA": {NsPerOp: 600},
	}}
	regs, skipped := gate(l, bad, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkA") {
		t.Fatalf("regressions = %v", regs)
	}
	if len(skipped) != 1 || skipped[0] != "BenchmarkNew" {
		t.Fatalf("skipped = %v", skipped)
	}
}

// TestRunEndToEnd drives the CLI surface: parse from stdin, merge the two
// runs through temp files, and gate both ways.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer

	in := strings.NewReader("BenchmarkX \t 10\t 1000 ns/op\t 0 B/op\t 0 allocs/op\n")
	if code := run([]string{"-parse"}, in, &out, &errb); code != 0 {
		t.Fatalf("parse exit %d: %s", code, errb.String())
	}
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(basePath, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	in = strings.NewReader("BenchmarkX \t 20\t 500 ns/op\t 0 B/op\t 0 allocs/op\n")
	if code := run([]string{"-parse"}, in, &out, &errb); code != 0 {
		t.Fatalf("parse exit %d: %s", code, errb.String())
	}
	curPath := filepath.Join(dir, "cur.json")
	if err := os.WriteFile(curPath, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if code := run([]string{"-merge", "-baseline", basePath, "-current", curPath, "-note", "e2e"}, nil, &out, &errb); code != 0 {
		t.Fatalf("merge exit %d: %s", code, errb.String())
	}
	var l Ledger
	if err := json.Unmarshal(out.Bytes(), &l); err != nil {
		t.Fatal(err)
	}
	if l.Benchmarks["BenchmarkX"].Speedup != 2 {
		t.Fatalf("ledger = %+v", l)
	}
	ledgerPath := filepath.Join(dir, "ledger.json")
	if err := os.WriteFile(ledgerPath, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if code := run([]string{"-gate", "-ledger", ledgerPath, "-current", curPath}, nil, &out, &errb); code != 0 {
		t.Fatalf("gate exit %d: %s", code, errb.String())
	}
	slow := filepath.Join(dir, "slow.json")
	slowRun := Run{Benchmarks: map[string]Measurement{"BenchmarkX": {NsPerOp: 1500}}}
	data, _ := json.Marshal(slowRun)
	if err := os.WriteFile(slow, data, 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-gate", "-ledger", ledgerPath, "-current", slow}, nil, &out, &errb); code != 1 {
		t.Fatalf("gate on regression: exit %d, want 1 (stderr %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "REGRESSION") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

// TestCollectStats exercises the profile-size sampler on the real
// schedulers (a short run per tracked kind).
func TestCollectStats(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full simulations")
	}
	stats, err := collectStats()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range statKinds {
		st, ok := stats[kind]
		if !ok {
			t.Fatalf("kind %q missing from stats", kind)
		}
		if st.Samples == 0 || st.MaxPoints == 0 || st.MeanPoints <= 0 {
			t.Fatalf("kind %q stats empty: %+v", kind, st)
		}
	}
}
