// Command benchdiff maintains the repo's benchmark ledger: it parses `go
// test -bench` output into machine-readable JSON, merges a baseline and a
// current run into the committed ledger (currently BENCH_PR6.json), gates CI on
// regressions against that ledger, and samples availability-profile sizes
// per scheduler kind. PERFORMANCE.md documents the workflow; the Makefile
// wires the common invocations as bench-json and bench-gate.
//
// Modes (exactly one):
//
//	benchdiff -parse < bench_output.txt > run.json
//	benchdiff -merge -baseline base.json -current cur.json [-statsfile stats.json] [-note "..."] > BENCH_PR6.json
//	benchdiff -gate -ledger BENCH_PR6.json -current cur.json [-tolerance 0.20]
//	benchdiff -stats > stats.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Measurement is one benchmark's figures from a single run.
type Measurement struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Run is the parsed form of one `go test -bench` invocation.
type Run struct {
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// Entry pairs a benchmark's committed baseline with the current figures.
// Speedup is baseline/current (2.0 = twice as fast); it is present only
// when the benchmark exists in both runs under the same name.
type Entry struct {
	BaselineNs     float64 `json:"baseline_ns_per_op,omitempty"`
	CurrentNs      float64 `json:"current_ns_per_op"`
	Speedup        float64 `json:"speedup,omitempty"`
	BaselineAllocs float64 `json:"baseline_allocs_per_op,omitempty"`
	CurrentAllocs  float64 `json:"current_allocs_per_op"`
}

// ProfileStat summarizes the availability-profile size one scheduler kind
// reached while replaying the reference workload (see collectStats).
type ProfileStat struct {
	Jobs       int     `json:"jobs"`
	Samples    int     `json:"samples"`
	MaxPoints  int     `json:"max_points"`
	MeanPoints float64 `json:"mean_points"`
}

// Ledger is the committed benchmark record (BENCH_PR6.json).
type Ledger struct {
	Note         string                 `json:"note,omitempty"`
	Benchmarks   map[string]Entry       `json:"benchmarks"`
	ProfileStats map[string]ProfileStat `json:"profile_stats,omitempty"`
}

// benchLine matches one result line of `go test -bench -benchmem` output.
// The trailing -N (GOMAXPROCS) suffix is folded into the name capture and
// stripped so ledgers compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// parseBench reads `go test -bench` output into a Run.
func parseBench(r io.Reader) (Run, error) {
	run := Run{Benchmarks: map[string]Measurement{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return run, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		var bytes, allocs float64
		if m[4] != "" {
			bytes, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseFloat(m[5], 64)
		}
		run.Benchmarks[m[1]] = Measurement{
			Iterations: iters, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs,
		}
	}
	return run, sc.Err()
}

func readRun(path string) (Run, error) {
	var run Run
	data, err := os.ReadFile(path)
	if err != nil {
		return run, err
	}
	return run, json.Unmarshal(data, &run)
}

// merge builds the ledger from a baseline run and a current run.
func merge(baseline, current Run, stats map[string]ProfileStat, note string) Ledger {
	l := Ledger{Note: note, Benchmarks: map[string]Entry{}, ProfileStats: stats}
	for name, cur := range current.Benchmarks {
		e := Entry{CurrentNs: cur.NsPerOp, CurrentAllocs: cur.AllocsPerOp}
		if base, ok := baseline.Benchmarks[name]; ok {
			e.BaselineNs = base.NsPerOp
			e.BaselineAllocs = base.AllocsPerOp
			if cur.NsPerOp > 0 {
				e.Speedup = round2(base.NsPerOp / cur.NsPerOp)
			}
		}
		l.Benchmarks[name] = e
	}
	// Baseline-only benchmarks (renamed or removed) are kept for the
	// record with no current figures.
	for name, base := range baseline.Benchmarks {
		if _, ok := current.Benchmarks[name]; !ok {
			l.Benchmarks[name] = Entry{BaselineNs: base.NsPerOp, BaselineAllocs: base.AllocsPerOp}
		}
	}
	return l
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}

// gate compares a fresh run against the ledger's committed current
// figures and returns the regressions beyond tolerance (0.20 = 20%
// slower). Benchmarks present on only one side are reported via skipped.
func gate(l Ledger, current Run, tolerance float64) (regressions, skipped []string) {
	names := make([]string, 0, len(l.Benchmarks))
	for name := range l.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := l.Benchmarks[name]
		if e.CurrentNs == 0 {
			continue // baseline-only record, nothing to compare
		}
		cur, ok := current.Benchmarks[name]
		if !ok {
			skipped = append(skipped, name)
			continue
		}
		if cur.NsPerOp > e.CurrentNs*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs committed %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
				name, cur.NsPerOp, e.CurrentNs, 100*(cur.NsPerOp/e.CurrentNs-1), 100*tolerance))
		}
	}
	return regressions, skipped
}

// pointsReporter is implemented by the reservation-based schedulers; the
// ledger records how large their availability profiles actually get.
type pointsReporter interface{ ProfilePoints() int }

// statKinds are the scheduler kinds whose profile sizes the ledger
// tracks: the three that keep persistent reservation profiles.
var statKinds = []string{"conservative", "slack:1", "selective:2"}

// collectStats replays a fixed 1000-job CTC workload through each tracked
// scheduler kind, sampling the profile size after every simulation step.
func collectStats() (map[string]ProfileStat, error) {
	const jobs = 1000
	m, err := workload.NewCTC(0.85)
	if err != nil {
		return nil, err
	}
	base, err := m.Generate(jobs, 42)
	if err != nil {
		return nil, err
	}
	base = workload.ApplyEstimates(base, workload.Actual{}, 43)

	out := map[string]ProfileStat{}
	for _, kind := range statKinds {
		mk, err := sched.MakerFor(kind, sched.FCFS{})
		if err != nil {
			return nil, err
		}
		sch := mk(m.Procs)
		rep, ok := sch.(pointsReporter)
		if !ok {
			return nil, fmt.Errorf("benchdiff: scheduler %q does not report profile points", kind)
		}
		ss, err := sim.Open(sim.Machine{Procs: m.Procs}, sch, nil)
		if err != nil {
			return nil, err
		}
		for _, j := range base {
			if err := ss.Submit(j); err != nil {
				return nil, err
			}
		}
		st := ProfileStat{Jobs: jobs}
		var sum int64
		for {
			ok, err := ss.Step()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			n := rep.ProfilePoints()
			st.Samples++
			sum += int64(n)
			if n > st.MaxPoints {
				st.MaxPoints = n
			}
		}
		if _, err := ss.Finish(); err != nil {
			return nil, err
		}
		if st.Samples > 0 {
			st.MeanPoints = round2(float64(sum) / float64(st.Samples))
		}
		out[kind] = st
	}
	return out, nil
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		parseMode = fs.Bool("parse", false, "parse `go test -bench` output from stdin to JSON")
		mergeMode = fs.Bool("merge", false, "merge -baseline and -current runs into a ledger")
		gateMode  = fs.Bool("gate", false, "fail when -current regresses beyond -tolerance vs -ledger")
		statsMode = fs.Bool("stats", false, "sample per-scheduler profile sizes to JSON")
		baseline  = fs.String("baseline", "", "baseline run JSON (for -merge)")
		current   = fs.String("current", "", "current run JSON (for -merge and -gate)")
		ledger    = fs.String("ledger", "BENCH_PR6.json", "committed ledger JSON (for -gate)")
		statsFile = fs.String("statsfile", "", "profile-stats JSON to embed (for -merge)")
		note      = fs.String("note", "", "free-form note recorded in the ledger")
		tolerance = fs.Float64("tolerance", 0.20, "allowed slowdown fraction before -gate fails")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *parseMode:
		run, err := parseBench(stdin)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if len(run.Benchmarks) == 0 {
			fmt.Fprintln(stderr, "benchdiff: no benchmark lines found on stdin")
			return 1
		}
		if err := writeJSON(stdout, run); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	case *mergeMode:
		base, err := readRun(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
			return 1
		}
		cur, err := readRun(*current)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: current: %v\n", err)
			return 1
		}
		var stats map[string]ProfileStat
		if *statsFile != "" {
			data, err := os.ReadFile(*statsFile)
			if err != nil {
				fmt.Fprintf(stderr, "benchdiff: stats: %v\n", err)
				return 1
			}
			if err := json.Unmarshal(data, &stats); err != nil {
				fmt.Fprintf(stderr, "benchdiff: stats: %v\n", err)
				return 1
			}
		}
		if err := writeJSON(stdout, merge(base, cur, stats, *note)); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	case *gateMode:
		data, err := os.ReadFile(*ledger)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: ledger: %v\n", err)
			return 1
		}
		var l Ledger
		if err := json.Unmarshal(data, &l); err != nil {
			fmt.Fprintf(stderr, "benchdiff: ledger: %v\n", err)
			return 1
		}
		cur, err := readRun(*current)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: current: %v\n", err)
			return 1
		}
		regressions, skipped := gate(l, cur, *tolerance)
		for _, s := range skipped {
			fmt.Fprintf(stdout, "skipped (not in current run): %s\n", s)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintf(stderr, "REGRESSION %s\n", r)
			}
			return 1
		}
		fmt.Fprintf(stdout, "benchdiff: %d benchmarks within %.0f%% of the committed ledger\n",
			len(l.Benchmarks)-len(skipped), 100**tolerance)
	case *statsMode:
		stats, err := collectStats()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := writeJSON(stdout, stats); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	default:
		fmt.Fprintln(stderr, "benchdiff: pick one mode: -parse, -merge, -gate, or -stats")
		return 2
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
