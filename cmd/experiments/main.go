// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run all
//	experiments -run Figure1,Table4 -jobs 10000 -seed 7
//	experiments -run Figure2 -format csv
//	experiments -run all -j 8 -cache-dir .expcache -journal run.jsonl
//
// Each experiment prints one or more tables; EXPERIMENTS.md records the
// expected shapes and how they compare with the paper. Experiments fan out
// across -j workers (1 = legacy serial path) and share one memoized Lab;
// with -cache-dir, finished tables are content-addressed on disk so a
// repeated run with identical parameters is near-instant.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/exp"
	"repro/internal/prof"
	"repro/internal/runner"
	"repro/internal/viz"
)

func main() {
	var (
		runList    = flag.String("run", "all", "comma-separated experiment IDs, or \"all\"")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		jobs       = flag.Int("jobs", 0, "jobs per trace (default from exp.DefaultParams)")
		seed       = flag.Int64("seed", 0, "random seed (default from exp.DefaultParams)")
		normalLoad = flag.Float64("normal-load", 0, "offered load of the base trace")
		highLoad   = flag.Float64("high-load", 0, "offered load of the high-load condition")
		format     = flag.String("format", "text", "output format: text, csv, or markdown")
		outDir     = flag.String("out", "", "also write one file per experiment into this directory")
		report     = flag.String("report", "", "also write every table into one combined markdown report file")
		figures    = flag.String("figures", "", "also render chartable tables as SVG bar charts into this directory")
		workers    = flag.Int("j", runtime.NumCPU(), "parallel workers (1 = legacy serial path)")
		cacheDir   = flag.String("cache-dir", "", "content-addressed table cache directory (empty: no cache)")
		journal    = flag.String("journal", "", "append a JSONL run journal to this file")
		quiet      = flag.Bool("q", false, "suppress the run summary on stderr")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (post-GC) to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := prof.StartCPU(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeap(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
		return
	}

	p := exp.DefaultParams()
	if *jobs > 0 {
		p.Jobs = *jobs
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *normalLoad > 0 {
		p.NormalLoad = *normalLoad
	}
	if *highLoad > 0 {
		p.HighLoad = *highLoad
	}

	lab, err := exp.NewLab(p)
	if err != nil {
		fatal(err)
	}

	var exps []exp.Experiment
	if *runList == "all" {
		exps = exp.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	}

	opt := runner.Options{Workers: *workers}
	if *cacheDir != "" {
		cache, err := runner.OpenCache(*cacheDir, exp.CacheSalt)
		if err != nil {
			fatal(err)
		}
		opt.Cache = cache
	}
	var journalW io.Writer
	if *journal != "" {
		f, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		journalW = f
	}
	// A journal always exists — it carries the run summary — but only
	// persists when -journal names a file.
	j := runner.NewJournal(journalW)
	opt.Journal = j
	lab.SetJournal(j)

	tables, err := exp.RunExperiments(context.Background(), lab, exps, opt)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "experiments:", j.Summary())
	}

	for _, t := range tables {
		var err error
		switch *format {
		case "text":
			err = t.Render(os.Stdout)
		case "csv":
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			err = t.CSV(os.Stdout)
		case "markdown":
			err = t.Markdown(os.Stdout)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fatal(err)
		}
	}

	if *outDir != "" {
		if err := writeFiles(*outDir, tables, *format); err != nil {
			fatal(err)
		}
	}
	if *report != "" {
		if err := writeReport(*report, p, tables); err != nil {
			fatal(err)
		}
	}
	if *figures != "" {
		if err := writeFigures(*figures, tables); err != nil {
			fatal(err)
		}
	}
}

// writeFigures renders each chartable table as an SVG bar chart; tables
// sharing an ID get numbered suffixes.
func writeFigures(dir string, tables []*exp.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	count := map[string]int{}
	for _, t := range tables {
		chart, ok := t.BarChart()
		if !ok {
			continue
		}
		count[t.ID]++
		name := t.ID
		if count[t.ID] > 1 {
			name = fmt.Sprintf("%s-%d", t.ID, count[t.ID])
		}
		f, err := os.Create(filepath.Join(dir, name+".svg"))
		if err != nil {
			return err
		}
		if err := viz.RenderBarChartSVG(f, chart); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeReport emits every table into one markdown document.
func writeReport(path string, p exp.Params, tables []*exp.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	write := func() error {
		if _, err := fmt.Fprintf(f,
			"# Backfilling characterization — experiment report\n\n"+
				"Parameters: %d jobs per trace, seed %d, loads %.2f (normal) / %.2f (high).\n\n",
			p.Jobs, p.Seed, p.NormalLoad, p.HighLoad); err != nil {
			return err
		}
		for _, t := range tables {
			if err := t.Markdown(f); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFiles groups tables by experiment ID and writes one file each.
func writeFiles(dir string, tables []*exp.Table, format string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	byID := map[string][]*exp.Table{}
	var order []string
	for _, t := range tables {
		if _, seen := byID[t.ID]; !seen {
			order = append(order, t.ID)
		}
		byID[t.ID] = append(byID[t.ID], t)
	}
	ext := ".txt"
	switch format {
	case "csv":
		ext = ".csv"
	case "markdown":
		ext = ".md"
	}
	for _, id := range order {
		f, err := os.Create(filepath.Join(dir, id+ext))
		if err != nil {
			return err
		}
		for _, t := range byID[id] {
			switch format {
			case "csv":
				err = t.CSV(f)
			case "markdown":
				err = t.Markdown(f)
			default:
				err = t.Render(f)
			}
			if err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
