package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp"
)

func TestWriteFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	tables := []*exp.Table{
		{ID: "A", Title: "first", Headers: []string{"x"}, Rows: [][]string{{"1"}}},
		{ID: "A", Title: "second panel", Headers: []string{"x"}, Rows: [][]string{{"2"}}},
		{ID: "B", Title: "other", Headers: []string{"y"}, Rows: [][]string{{"3"}}},
	}
	if err := writeFiles(dir, tables, "text"); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(dir, "A.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(a), "first") || !strings.Contains(string(a), "second panel") {
		t.Fatalf("A.txt missing panels: %q", a)
	}
	if _, err := os.Stat(filepath.Join(dir, "B.txt")); err != nil {
		t.Fatal("B.txt missing")
	}

	if err := writeFiles(dir, tables, "csv"); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "B.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "y\n") {
		t.Fatalf("B.csv wrong: %q", b)
	}
}

func TestWriteReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.md")
	tables := []*exp.Table{
		{ID: "A", Title: "first", Headers: []string{"x"}, Rows: [][]string{{"1"}}},
		{ID: "B", Title: "second", Headers: []string{"y"}, Rows: [][]string{{"2"}}},
	}
	p := exp.DefaultParams()
	if err := writeReport(path, p, tables); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, frag := range []string{
		"# Backfilling characterization",
		"### A: first", "### B: second",
		"| x |", "| 2 |",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}
