// Starvation anatomy: the failure mode behind the paper's worst-case
// turnaround tables (4 and 7), made visible. A wide job arrives into a
// stream of narrow ones; under EASY(SJF) it can starve indefinitely, and
// the two remedies the authors propose — selective reservations (this
// paper's §6) and selective preemption (their companion paper) — each fix
// it differently. The schedules are rendered as Gantt charts so you can
// watch it happen.
//
//	go run ./examples/starvation
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/viz"
)

func main() {
	const procs = 10

	// The victim: a machine-wide job arriving just after a narrow stream
	// begins. Every narrow job is shorter, so SJF always ranks it last.
	jobs := []*job.Job{
		{ID: 1, Arrival: 0, Runtime: 1800, Estimate: 1800, Width: 5},
		{ID: 2, Arrival: 60, Runtime: 3600, Estimate: 3600, Width: 10}, // the wide victim
	}
	id := 3
	for t := int64(120); t < 14400; t += 600 {
		jobs = append(jobs, &job.Job{
			ID: id, Arrival: t, Runtime: 1700, Estimate: 1700, Width: 5,
		})
		id++
	}

	show := func(scheduler, policy string) {
		res, err := core.Run(core.Config{
			Procs: procs, Scheduler: scheduler, Policy: policy, Audit: true,
		}, jobs)
		if err != nil {
			log.Fatal(err)
		}
		var victim struct{ start, end int64 }
		for _, p := range res.Placements {
			if p.Job.ID == 2 {
				victim.start, victim.end = p.Start, p.End
			}
		}
		fmt.Printf("=== %s ===\n", res.Report.Scheduler)
		fmt.Printf("wide job waited %ds (turnaround %ds); overall avg slowdown %.2f, worst turnaround %ds\n",
			victim.start-60, victim.end-60,
			res.Report.Overall.MeanSlowdown, res.Report.Overall.MaxTurnaround)
		if err := viz.Render(os.Stdout, res.Placements, viz.Options{Procs: procs, Width: 84}); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// EASY(SJF): the narrow stream perpetually outranks the wide job; it
	// only runs when the stream pauses.
	show("easy", "SJF")

	// Selective reservation (§6): once the wide job's expansion factor
	// crosses the threshold it receives a guaranteed start.
	show("selective:2", "SJF")

	// Selective preemption (companion paper): the wide job suspends the
	// narrow runners, then they resume.
	show("preemptive:2", "SJF")

	fmt.Println("reading: both remedies bound the wide job's delay; reservations do it by")
	fmt.Println("promising the future, preemption by reclaiming the present. Compare the")
	fmt.Println("stream jobs' rows to see who pays in each case.")
}
