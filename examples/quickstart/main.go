// Quickstart: generate a small synthetic workload, run one backfilling
// scheduler over it, and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

func main() {
	// A synthetic stand-in for the 128-node SDSC SP2 trace at high load.
	model, err := workload.NewSDSC(0.85)
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := model.Generate(2000, 1)
	if err != nil {
		log.Fatal(err)
	}

	// EASY (aggressive) backfilling with shortest-job-first priority.
	res, err := core.Run(core.Config{
		Procs:     model.Procs,
		Scheduler: "easy",
		Policy:    "SJF",
		Audit:     true,
	}, jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduler:        %s\n", res.Report.Scheduler)
	fmt.Printf("jobs simulated:   %d on %d processors\n", res.Report.Overall.N, model.Procs)
	fmt.Printf("avg slowdown:     %.2f\n", res.Report.Overall.MeanSlowdown)
	fmt.Printf("avg turnaround:   %.0f s\n", res.Report.Overall.MeanTurnaround)
	fmt.Printf("worst turnaround: %d s\n", res.Report.Overall.MaxTurnaround)
	fmt.Printf("utilization:      %.1f%%\n\n", 100*res.Report.Utilization)

	fmt.Println("slowdown by category (Short/Long × Narrow/Wide at 1 h × 8 procs):")
	for _, c := range job.Categories() {
		s := res.Report.ByCategory[c]
		fmt.Printf("  %-3s %5d jobs  avg %8.2f\n", c, s.N, s.MeanSlowdown)
	}
}
