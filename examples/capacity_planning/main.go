// Capacity planning: how much load can the machine absorb before user
// experience collapses, and how much does the scheduler choice move that
// knee? This example sweeps offered load by shrinking inter-arrival times
// (the paper's high-load methodology) and prints slowdown and utilization
// curves for three schedulers.
//
//	go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const baseLoad = 0.55
	model, err := workload.NewSDSC(baseLoad)
	if err != nil {
		log.Fatal(err)
	}
	base, err := model.Generate(2500, 21)
	if err != nil {
		log.Fatal(err)
	}
	base = workload.ApplyEstimates(base, workload.Actual{}, 22)

	schedulers := []struct{ kind, pol string }{
		{"none", "FCFS"},
		{"conservative", "FCFS"},
		{"easy", "SJF"},
	}

	fmt.Printf("%-8s", "load")
	for _, s := range schedulers {
		fmt.Printf(" %22s %6s", s.kind+"/"+s.pol+" slwdwn", "util%")
	}
	fmt.Println()

	for _, target := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		jobs, err := trace.ScaleLoad(base, baseLoad/target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f", trace.OfferedLoad(jobs, model.Procs))
		for _, s := range schedulers {
			res, err := core.Run(core.Config{
				Procs: model.Procs, Scheduler: s.kind, Policy: s.pol, Audit: true,
			}, jobs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %22.2f %6.1f", res.Report.Overall.MeanSlowdown, 100*res.Report.Utilization)
		}
		fmt.Println()
	}
	fmt.Println("\nreading: the no-backfill baseline saturates first; backfilling pushes the")
	fmt.Println("knee right. Delivered utilization also reveals how much offered work each")
	fmt.Println("scheduler actually packs onto the machine at saturation.")
}
