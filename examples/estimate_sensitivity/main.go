// Estimate sensitivity: should a center multiply user wall-clock limits by
// a factor, as prior work suggested? This example sweeps systematic
// overestimation factors R and contrasts them with realistic "actual"
// estimate noise, separating well- from poorly-estimated jobs — the §5
// analysis of the paper as a reusable tool.
//
//	go run ./examples/estimate_sensitivity
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	model, err := workload.NewCTC(0.85)
	if err != nil {
		log.Fatal(err)
	}
	base, err := model.Generate(3000, 11)
	if err != nil {
		log.Fatal(err)
	}

	estimateModels := []workload.EstimateModel{
		workload.Exact{},
		workload.Systematic{R: 2},
		workload.Systematic{R: 4},
		workload.Actual{},
	}

	for _, sched := range []string{"conservative", "easy"} {
		fmt.Printf("=== %s backfilling (FCFS) ===\n", sched)
		fmt.Printf("%-8s %12s %16s %16s\n", "est", "avg slowdwn", "well-est slwdwn", "poor-est slwdwn")
		for _, em := range estimateModels {
			jobs := workload.ApplyEstimates(base, em, 12)
			res, err := core.Run(core.Config{
				Procs: model.Procs, Scheduler: sched, Policy: "FCFS", Audit: true,
			}, jobs)
			if err != nil {
				log.Fatal(err)
			}
			// Split by estimate quality *under this model*.
			well := map[int]bool{}
			poor := map[int]bool{}
			for _, j := range jobs {
				if job.ClassifyEstimate(j) == job.WellEstimated {
					well[j.ID] = true
				} else {
					poor[j.ID] = true
				}
			}
			ws := metrics.SubsetSummary(res.Outcomes, well)
			ps := metrics.SubsetSummary(res.Outcomes, poor)
			fmt.Printf("%-8s %12.2f %16.2f %16.2f\n",
				em.Name(), res.Report.Overall.MeanSlowdown, ws.MeanSlowdown, ps.MeanSlowdown)
		}
		fmt.Println()
	}
	fmt.Println("reading: uniform padding (R=2, R=4) helps everyone by opening holes, but")
	fmt.Println("realistic noise ('actual') redistributes: jobs with honest estimates ride the")
	fmt.Println("holes while jobs with inflated limits lose their ability to backfill.")
}
