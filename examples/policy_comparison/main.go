// Policy comparison: the decision a supercomputer center faces before a
// scheduler migration — which backfilling scheme and queue priority should
// we run? This example sweeps the full scheduler × policy matrix over one
// workload and prints a decision table, including the per-category view
// that the paper argues is essential (overall averages hide who wins).
//
//	go run ./examples/policy_comparison
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/workload"
)

func main() {
	model, err := workload.NewCTC(0.85)
	if err != nil {
		log.Fatal(err)
	}
	base, err := model.Generate(3000, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Centers live with real (inaccurate) user estimates.
	jobs := workload.ApplyEstimates(base, workload.Actual{}, 8)

	kinds := []string{"none", "conservative", "easy", "selective:adaptive"}
	policies := []string{"FCFS", "SJF", "XF"}
	results, err := core.RunMatrix(model.Procs, jobs, kinds, policies)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Printf("%-28s %12s %12s %14s %10s\n",
		"scheduler", "avg slowdwn", "p95 slowdwn", "max turnaround", "util %")
	fmt.Println("--------------------------------------------------------------------------------")
	for _, name := range names {
		r := results[name].Report
		fmt.Printf("%-28s %12.2f %12.2f %14d %10.1f\n",
			name, r.Overall.MeanSlowdown, r.Overall.P95Slowdown,
			r.Overall.MaxTurnaround, 100*r.Utilization)
	}

	// The paper's point: look per category before deciding. Compare the two
	// finalists the way Figure 2 does.
	cons, easy := results["Conservative(FCFS)"], results["EASY(SJF)"]
	fmt.Printf("\nper-category slowdown, %s vs %s:\n", cons.Report.Scheduler, easy.Report.Scheduler)
	for _, c := range job.Categories() {
		b := cons.Report.ByCategory[c]
		v := easy.Report.ByCategory[c]
		fmt.Printf("  %-3s %5d jobs   %10.2f -> %10.2f\n", c, b.N, b.MeanSlowdown, v.MeanSlowdown)
	}
	fmt.Println("\nreading: a category that regresses under the winner may matter more to your")
	fmt.Println("users than the overall average — exactly the paper's argument for")
	fmt.Println("characterizing schedulers per job class rather than by a single mean.")
}
