// Trace study: the full site-analyst workflow on one page. Start from a
// workload log (here: a synthetic one standing in for your site's SWF
// file), fit a statistical model to it, regenerate fresh workloads with a
// realistic day/night submission cycle, and run a factorial scheduler study
// over them — the methodology a center would use to evaluate a scheduler
// change against its own history rather than someone else's benchmark.
//
//	go run ./examples/trace_study
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Step 1: the "site log". In production this comes from swf.Parse on
	// your accounting file; here a built-in model plays that role.
	site, err := workload.NewSDSC(0.75)
	if err != nil {
		log.Fatal(err)
	}
	history, err := site.Generate(4000, 99)
	if err != nil {
		log.Fatal(err)
	}
	history = workload.ApplyEstimates(history, workload.Actual{}, 100)
	fmt.Printf("site log: %d jobs, offered load %.2f\n",
		len(history), trace.OfferedLoad(history, site.Procs))

	// Step 2: fit a generator to the log. The fitted model resamples the
	// observed runtime/width distributions per job category, so fresh
	// workloads share the log's statistical character without replaying
	// its exact accidents.
	fitted, err := workload.Fit("site", history, site.Procs, workload.FitOptions{Smooth: true})
	if err != nil {
		log.Fatal(err)
	}
	fitted.Daily = workload.StandardDaily() // add the diurnal cycle replay loses
	future, err := fitted.Generate(2500, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted model: regenerated %d jobs, offered load %.2f\n\n",
		len(future), trace.OfferedLoad(future, site.Procs))

	// Step 3: the factorial study — candidate schedulers × the loads the
	// site expects after its next expansion, under realistic user
	// estimates (the Estimates axis rewrites them per cell).
	design := sweep.Design{
		Workloads: []sweep.Workload{{
			Name: "site-fitted", Jobs: future, Procs: site.Procs,
		}},
		Schedulers: []string{"conservative", "easy", "selective:adaptive", "slack:1"},
		Policies:   []string{"FCFS", "SJF"},
		Estimates:  []string{"actual"},
		Loads:      []float64{0.7, 0.85},
		Seed:       11,
	}
	recs, err := sweep.Run(design, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-24s %-6s %6s %12s %10s %14s %8s\n",
		"scheduler", "policy", "load", "avg slowdwn", "gini", "max turnaround", "util%")
	fmt.Println(strings.Repeat("-", 88))
	for _, r := range recs {
		fmt.Printf("%-24s %-6s %6.2f %12.2f %10.3f %14d %8.1f\n",
			r.Scheduler, r.Policy, r.Load, r.Slowdown, r.Gini, r.MaxTurn, 100*r.Utilization)
	}

	fmt.Println("\nfull long-form CSV (pipe into your plotting tool):")
	if err := sweep.WriteCSV(os.Stdout, recs[:2]); err != nil {
		log.Fatal(err)
	}
}
